"""One-shot experiment report: every result the paper plots, as markdown.

``generate_report`` runs the analytical sweeps and (optionally) the
experimental pipelines on a shared context and renders a self-contained
markdown document — the artefact a user keeps from a reproduction run.
The ``repro report`` CLI command wraps it.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core import (
    AnalyticalChipModel,
    EnergyOptimizationScenario,
    SAMPLE_APPLICATION,
    figure1_sweep,
    figure2_sweep,
)
from repro.harness.context import ExperimentContext
from repro.harness.scenario1 import run_scenario1
from repro.harness.scenario2 import run_scenario2
from repro.tech import NODE_130NM, NODE_65NM
from repro.units import GIGA
from repro.workloads import workload_by_name


@dataclass(frozen=True)
class ReportOptions:
    """What to include and how hard to run."""

    include_experimental: bool = True
    workload_scale: float = 0.25
    scenario1_apps: Sequence[str] = ("FMM", "LU", "Ocean", "Cholesky", "Radix")
    scenario2_apps: Sequence[str] = ("FMM", "Cholesky", "Radix")
    scenario2_core_counts: Sequence[int] = (1, 2, 4, 8, 12, 16)


def _markdown_table(headers: Sequence[str], rows) -> str:
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    out = io.StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(fmt(c) for c in row) + " |\n")
    return out.getvalue()


def _analytical_sections(out: io.StringIO, executor=None) -> None:
    out.write("## Figure 1 — analytical power optimization\n\n")
    for node in (NODE_130NM, NODE_65NM):
        chip = AnalyticalChipModel(node)
        curves = figure1_sweep(chip, efficiency_points=41, executor=executor)
        rows = []
        for curve in curves:
            def nearest(target, curve=curve):
                candidates = [
                    (abs(eps - target), power)
                    for eps, power in zip(
                        curve.efficiencies, curve.normalized_power
                    )
                ]
                if not candidates:
                    return float("nan")
                distance, power = min(candidates)
                return power if distance < 0.02 else float("nan")

            rows.append([curve.n, nearest(0.5), nearest(0.75), nearest(1.0)])
        out.write(f"### {node.name}\n\n")
        out.write(
            _markdown_table(["N", "P@eps=0.5", "P@eps=0.75", "P@eps=1.0"], rows)
        )
        out.write("\n")

    out.write("## Figure 2 — analytical speedup under the power budget\n\n")
    for node in (NODE_130NM, NODE_65NM):
        curve = figure2_sweep(AnalyticalChipModel(node), executor=executor)
        n_peak, s_peak = curve.peak()
        lookup = dict(zip(curve.core_counts, curve.speedups))
        rows = [[n, lookup[n]] for n in (1, 2, 4, 8, 16, 24, 32) if n in lookup]
        out.write(f"### {node.name} (peak {s_peak:.2f}x at N = {n_peak})\n\n")
        out.write(_markdown_table(["N", "speedup"], rows))
        out.write("\n")

    out.write("## Scenario III (extension) — energy-optimal points\n\n")
    scenario = EnergyOptimizationScenario(AnalyticalChipModel(NODE_65NM))
    points = scenario.energy_curve(SAMPLE_APPLICATION, (1, 2, 4, 8, 16))
    out.write(
        _markdown_table(
            ["N", "f* (GHz)", "E / E_nom", "T / T_nom"],
            [
                [p.n, p.frequency_hz / GIGA, p.relative_energy, p.relative_time]
                for p in points
            ],
        )
    )
    out.write("\n")


def _experimental_sections(
    out: io.StringIO, options: ReportOptions, executor=None
) -> None:
    context = ExperimentContext(workload_scale=options.workload_scale)
    out.write(
        f"*Experimental context: workload scale {options.workload_scale}, "
        f"power budget {context.calibration.max_operational_power_w:.1f} W.*\n\n"
    )

    out.write("## Figure 3 — experimental Scenario I\n\n")
    models = [workload_by_name(app) for app in options.scenario1_apps]
    fig3 = run_scenario1(context, models, executor=executor)
    rows = [
        [
            app,
            r.n,
            r.nominal_efficiency,
            r.actual_speedup,
            r.normalized_power,
            r.normalized_power_density,
            r.average_temperature_c,
        ]
        for app, app_rows in fig3.items()
        for r in app_rows
    ]
    out.write(
        _markdown_table(
            ["app", "N", "eps_n", "speedup", "norm P", "norm density", "T (C)"],
            rows,
        )
    )
    out.write("\n")

    out.write("## Figure 4 — experimental Scenario II\n\n")
    models = [workload_by_name(app) for app in options.scenario2_apps]
    fig4 = run_scenario2(
        context, models, core_counts=options.scenario2_core_counts,
        executor=executor,
    )
    rows = [
        [app, r.n, r.nominal_speedup, r.actual_speedup, r.frequency_hz / GIGA, r.power_w]
        for app, app_rows in fig4.items()
        for r in app_rows
    ]
    out.write(
        _markdown_table(
            ["app", "N", "nominal", "actual", "f (GHz)", "P (W)"], rows
        )
    )
    out.write("\n")

    _adaptive_scenario3_section(out, context, options, executor)


def _adaptive_scenario3_section(
    out: io.StringIO, context, options: ReportOptions, executor
) -> None:
    """Scenario III, measured: the adaptive optimizer's min-EDP points.

    The analytical section above searches the closed-form model; this
    one searches the *simulator* with the coarse-to-fine optimizer, so
    the table carries the measured energy-delay optima plus how many
    grid simulations the search avoided.
    """
    from repro.harness.optimizer import MinEnergyDelay, run_optimizer

    out.write("## Scenario III (experimental) — adaptive min-EDP search\n\n")
    models = [workload_by_name(app) for app in options.scenario2_apps]
    campaign = run_optimizer(
        context,
        models,
        MinEnergyDelay(delay_exponent=1),
        core_counts=options.scenario2_core_counts,
        executor=executor,
    )
    out.write(
        _markdown_table(
            ["app", "N", "f* (GHz)", "EDP (J*s)", "speedup", "P (W)"],
            [
                [
                    r.app,
                    r.n,
                    r.frequency_hz / GIGA,
                    f"{r.metric:.3e}",
                    r.speedup,
                    r.total_power_w,
                ]
                for r in campaign.rows
            ],
        )
    )
    out.write(
        f"\nAdaptive search: {campaign.evaluations} grid evaluations of "
        f"{campaign.exhaustive_evaluations} exhaustive "
        f"({campaign.simulations_saved} simulations saved) in "
        f"{campaign.rounds} refinement round(s).\n\n"
    )


def _robustness_section(out: io.StringIO, executor) -> None:
    """Degraded-mode disclosure: which points, if any, are missing.

    A report built from a partial campaign must say so in the artefact
    itself — a reader comparing tables against the paper cannot be left
    to guess that a row is absent because its point was quarantined.
    """
    from repro.harness.store import failed_point_rows

    out.write("## Robustness\n\n")
    stats = executor.stats
    rows = failed_point_rows(executor.failed)
    # Deterministic library failures (e.g. infeasible operating points
    # outside the sweep's valid region) are expected physics, not
    # degradation; only retryable failures mean the run lost data.
    quarantined = [r for r in rows if r.retryable]
    infeasible = [r for r in rows if not r.retryable]
    total = stats.evaluated + stats.cache_hits
    if infeasible:
        out.write(
            f"{len(infeasible)} point(s) were deterministically "
            "infeasible (expected outside the valid operating region).\n\n"
        )
    if not quarantined:
        out.write(
            f"All {total - len(rows)} feasible sweep points completed; "
            "no transient failures.\n"
        )
    else:
        out.write(
            f"**Degraded run**: {len(quarantined)} point(s) exhausted their "
            "retry budget; the tables above omit them.\n\n"
        )
        out.write(
            _markdown_table(
                ["point", "error", "attempts", "message"],
                [
                    [r.index, r.error_type, r.attempts, r.message]
                    for r in quarantined
                ],
            )
        )
        out.write("\n")
    _alerts_subsection(out)


def _alerts_subsection(out: io.StringIO) -> None:
    """Alert-rule findings over the run's sampled counter timeline.

    Only rendered when counter sampling was enabled and produced
    readings — sampling-off reports keep their historical text exactly.
    The snapshot is non-destructive: a telemetry run finalizing after
    report generation still drains the same samples.
    """
    from repro.telemetry.alerts import evaluate_rules, stats_from_samples
    from repro.telemetry.timeseries import get_sampler

    sampler = get_sampler()
    if not sampler.enabled or not sampler.count:
        return
    samples = sampler.records()
    findings = evaluate_rules(
        stats_from_samples(samples), dropped=sampler.dropped
    )
    out.write("\n### Telemetry alerts\n\n")
    if not findings:
        out.write(
            f"No alert rules fired over {len(samples)} sampled readings.\n"
        )
        return
    out.write(
        _markdown_table(
            ["rule", "channel", "observed", "threshold", "detail"],
            [
                [f.rule, f.channel or "—", f.value, f.threshold, f.message]
                for f in findings
            ],
        )
    )
    out.write("\n")


def generate_report(
    options: Optional[ReportOptions] = None, executor=None
) -> str:
    """Render the full markdown report; returns the document text.

    All sweeps share ``executor`` (a default inline one when omitted),
    so the closing robustness section accounts for every point the
    report ran — including, under a fault-tolerant executor, the ones
    that were quarantined and are therefore missing from the tables.
    """
    options = options or ReportOptions()
    if executor is None:
        from repro.harness.executor import SweepExecutor

        executor = SweepExecutor()
    out = io.StringIO()
    out.write(
        "# repro experiment report\n\n"
        "Reproduction of Li & Martinez, *Power-Performance Implications of "
        "Thread-level Parallelism on Chip Multiprocessors* (ISPASS 2005).\n\n"
    )
    _analytical_sections(out, executor)
    if options.include_experimental:
        _experimental_sections(out, options, executor)
    _robustness_section(out, executor)
    return out.getvalue()
