"""Interprocedural dimensional analysis: units as exponent vectors.

The suffix checker (:mod:`repro.analysis.unitcheck`) is lexical — it
sees ``x_hz + y_s`` but not ``p = total_power_w; e = p * wall_s;
e + frequency_hz``.  This checker runs a small abstract interpreter
over every function: physical units are exponent vectors over six base
axes (``W`` power, ``V`` voltage, ``s`` time, ``K`` kelvin, ``C``
celsius, ``m`` length) plus a magnitude scale, seeded from name
suffixes, :mod:`repro.units` constants, and callee return summaries
computed by a fixpoint over the call graph
(:mod:`repro.analysis.flow`).  The algebra is the physical one:

* ``power * time`` unifies with energy (``J == W·s``), so
  ``ed2p = energy_j * delay_s ** 2`` carries ``W·s³`` and adding it to
  a power or frequency is flagged;
* ``GHz`` and ``Hz`` share the vector ``s⁻¹`` but differ in scale, so
  mixed-magnitude sums are flagged even though the dimension matches;
* Celsius and kelvin are distinct axes related by the
  ``ZERO_CELSIUS_IN_KELVIN`` offset — adding the offset to a Celsius
  value *converts* it, any other K/°C mix is flagged.

Rules (scoped to :data:`DEFAULT_DIM_SCOPE` — the metric pipelines the
figures are computed from):

* ``DIM-MISMATCH`` (error) — ``+``/``-``/comparison between
  incompatible quantities: different exponent vectors, or the same
  vector at different magnitudes (``GHz + Hz``).
* ``DIM-RETURN`` (error) — a function whose name suffix declares a
  unit returns a quantity with a different vector or magnitude
  (including a dimensionless ratio: a unit-erasing return).
* ``DIM-EXP`` (warning) — a united quantity raised to a non-integer
  constant power: the result's exponent vector would be fractional.

Inference is conservative: unknown stays unknown, bare numeric
constants are polymorphic (``power_w * 2`` is still watts), and
multiplying by a recognised scale constant (``GIGA``, ``1e-6``)
*converts* the magnitude rather than guessing.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import (
    CallGraph,
    call_candidates,
    node_id,
)
from repro.analysis.flow.dataflow import solve_summaries
from repro.analysis.index import FunctionInfo, TreeIndex
from repro.analysis.unitcheck import SCALE_CONSTANTS, UNIT_SUFFIXES, unit_of_name

#: Subtrees/files (relative to the analyzed root) the DIM rules cover —
#: the power/energy/thermal metric pipelines every figure flows through.
DEFAULT_DIM_SCOPE: Tuple[str, ...] = (
    "power/",
    "thermal/",
    "tech/",
    "sim/cmp.py",
    "harness/governor.py",
)

#: dimension name (as used by unitcheck) -> exponent vector.
_DIMENSION_AXES: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "frequency": (("s", -1),),
    "time": (("s", 1),),
    "power": (("W", 1),),
    "voltage": (("V", 1),),
    "energy": (("W", 1), ("s", 1)),
    "temperature-k": (("K", 1),),
    "temperature-c": (("C", 1),),
    "area": (("m", 2),),
    "length": (("m", 1),),
}

#: The Celsius→kelvin additive offset (repro.units.ZERO_CELSIUS_IN_KELVIN).
_OFFSET_NAMES = frozenset({"ZERO_CELSIUS_IN_KELVIN"})
_OFFSET_VALUE = 273.15

#: Named magnitude constants (repro.units.GIGA, ...): multiplying or
#: dividing by one converts the scale instead of scaling the quantity.
_SCALE_NAMES: Dict[str, float] = {name: value for value, name in SCALE_CONSTANTS.items()}
_SCALE_VALUES = frozenset(SCALE_CONSTANTS)


def _axes(*pairs: Tuple[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((axis, exp) for axis, exp in pairs if exp != 0))


@dataclass(frozen=True)
class Quantity:
    """One united abstract value: exponent vector + magnitude scale.

    ``scale`` relates the stored number to SI base units:
    ``SI value = numeric value * scale`` (so a ``*_ghz`` number carries
    ``scale=1e9`` over the vector ``s⁻¹``).
    """

    dims: Tuple[Tuple[str, int], ...]
    scale: float = 1.0

    def describe(self) -> str:
        """Human-readable vector, e.g. ``W·s^3 (x1e+09)``."""
        if not self.dims:
            body = "dimensionless"
        else:
            parts = []
            for axis, exp in self.dims:
                parts.append(axis if exp == 1 else f"{axis}^{exp}")
            body = "·".join(parts)
        if math.isclose(self.scale, 1.0, rel_tol=1e-9):
            return body
        return f"{body} (x{self.scale:.0e})"


class _Bottom:
    """No information yet (callee summary pending in the fixpoint)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BOTTOM"


class _Top:
    """Genuinely unknown (or conflicting) — never flagged."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TOP"


@dataclass(frozen=True)
class _Const:
    """A bare numeric constant: polymorphic against any unit."""

    value: Optional[float] = None


@dataclass(frozen=True)
class _Offset:
    """The Celsius/kelvin additive offset constant."""


BOTTOM = _Bottom()
TOP = _Top()

Abstract = Union[_Bottom, _Top, _Const, _Offset, Quantity]


def quantity_for_suffix(suffix: Optional[str]) -> Optional[Quantity]:
    """The :class:`Quantity` a unit suffix denotes, if any."""
    if suffix is None:
        return None
    entry = UNIT_SUFFIXES.get(suffix)
    if entry is None:
        return None
    dimension, scale = entry
    return Quantity(dims=_axes(*_DIMENSION_AXES[dimension]), scale=scale)


_EXP_TOKEN_RE = re.compile(r"^([a-z]+?)([2-9])$")


def _token_quantity(token: str) -> Optional[Quantity]:
    """The quantity one suffix token denotes (``s``, ``ghz``, ``s2``)."""
    direct = quantity_for_suffix(token)
    if direct is not None:
        return direct
    match = _EXP_TOKEN_RE.match(token)
    if match is None:
        return None
    base = quantity_for_suffix(match.group(1))
    if base is None:
        return None
    steps = int(match.group(2))
    exps = {axis: exp * steps for axis, exp in base.dims}
    return Quantity(dims=_axes(*exps.items()), scale=base.scale**steps)


def _suffix_of(identifier: str) -> Optional[Quantity]:
    """Unit declared by a name suffix, compound-aware.

    ``total_power_w`` → W; ``energy_delay_j_s`` → J·s (a *product* of
    trailing unit tokens); ``ed2p_j_s2`` → J·s².  At least one leading
    token must remain un-consumed — a name that is nothing but unit
    tokens is a description, not a measurement.
    """
    tokens = identifier.lower().split("_")
    run: List[Quantity] = []
    for token in reversed(tokens[1:]):
        quantity = _token_quantity(token)
        if quantity is None:
            break
        run.append(quantity)
    if len(run) >= 2:
        product: Abstract = _Const(1.0)
        for quantity in run:
            product = multiply(product, quantity)
        if isinstance(product, Quantity):
            return product
    return quantity_for_suffix(unit_of_name(identifier))


#: Well-known repro.units constants with physical dimensions.
_KNOWN_CONSTANTS: Dict[str, Quantity] = {
    "BOLTZMANN": Quantity(dims=_axes(("W", 1), ("s", 1), ("K", -1))),
    "ROOM_TEMPERATURE_K": Quantity(dims=_axes(("K", 1))),
}


def _same_scale(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-9)


def join(a: Abstract, b: Abstract) -> Abstract:
    """Least upper bound of two abstract values."""
    if isinstance(a, _Bottom):
        return b
    if isinstance(b, _Bottom):
        return a
    if isinstance(a, _Top) or isinstance(b, _Top):
        return TOP
    if isinstance(a, _Const) and isinstance(b, _Const):
        if a.value is not None and a.value == b.value:
            return a
        return _Const()
    if isinstance(a, _Offset) and isinstance(b, _Offset):
        return a
    if isinstance(a, _Const) and isinstance(b, (Quantity, _Offset)):
        return b
    if isinstance(b, _Const) and isinstance(a, (Quantity, _Offset)):
        return a
    if isinstance(a, Quantity) and isinstance(b, Quantity):
        if a.dims == b.dims and _same_scale(a.scale, b.scale):
            return a
        return TOP
    return TOP


def _is_scale(value: Abstract) -> Optional[float]:
    """The conversion factor ``value`` denotes, if it is one."""
    if isinstance(value, _Const) and value.value is not None:
        if value.value in _SCALE_VALUES:
            return value.value
    return None


def multiply(a: Abstract, b: Abstract, divide: bool = False) -> Abstract:
    """Abstract ``a * b`` (or ``a / b``)."""
    if isinstance(a, _Bottom) or isinstance(b, _Bottom):
        return BOTTOM
    if isinstance(a, (_Top, _Offset)) or isinstance(b, (_Top, _Offset)):
        return TOP
    if isinstance(a, _Const) and isinstance(b, _Const):
        if a.value is not None and b.value is not None:
            try:
                value = a.value / b.value if divide else a.value * b.value
            except ZeroDivisionError:
                return _Const()
            return _Const(value)
        return _Const()
    if isinstance(a, Quantity) and isinstance(b, Quantity):
        exps: Dict[str, int] = dict(a.dims)
        for axis, exp in b.dims:
            exps[axis] = exps.get(axis, 0) + (-exp if divide else exp)
        scale = a.scale / b.scale if divide else a.scale * b.scale
        dims = _axes(*exps.items())
        if not dims:
            # A pure ratio: magnitude bookkeeping no longer means
            # anything physical, so normalise it away.
            return Quantity(dims=(), scale=1.0)
        return Quantity(dims=dims, scale=scale)
    # Exactly one side is a constant against a quantity.
    quantity, const = (a, b) if isinstance(a, Quantity) else (b, a)
    assert isinstance(quantity, Quantity) and isinstance(const, _Const)
    factor = _is_scale(const)
    if factor is None:
        # A plain multiplier (2.0, 0.95): same unit, same scale.
        return quantity
    const_is_right = isinstance(b, _Const)
    if divide:
        if const_is_right:
            # v / k: numeric value shrinks by k, so scale grows by k.
            return replace(quantity, scale=quantity.scale * factor)
        # k / v inverts the vector as well.
        exps = {axis: -exp for axis, exp in quantity.dims}
        return Quantity(dims=_axes(*exps.items()), scale=factor / quantity.scale)
    return replace(quantity, scale=quantity.scale / factor)


def power(base: Abstract, exponent: Abstract) -> Tuple[Abstract, bool]:
    """Abstract ``base ** exponent``; second result = fractional-dim."""
    if isinstance(base, _Bottom) or isinstance(exponent, _Bottom):
        return BOTTOM, False
    if isinstance(base, _Const):
        return _Const(), False
    if not isinstance(base, Quantity) or not base.dims:
        return TOP, False
    if not isinstance(exponent, _Const) or exponent.value is None:
        return TOP, False
    n = exponent.value
    if float(n).is_integer():
        steps = int(n)
        exps = {axis: exp * steps for axis, exp in base.dims}
        return (
            Quantity(dims=_axes(*exps.items()), scale=base.scale**steps),
            False,
        )
    return TOP, True


@dataclass
class _Mismatch:
    """One incompatible pairing found while evaluating an expression."""

    line: int
    left: Quantity
    right: Quantity
    kind: str  # "dims" or "scale"


def add_or_compare(
    a: Abstract, b: Abstract, line: int, mismatches: List[_Mismatch],
    subtract: bool = False,
) -> Abstract:
    """Abstract ``a + b`` / ``a - b`` / ``a <op> b`` with flagging."""
    # Celsius/kelvin conversion through the additive offset.
    if isinstance(b, _Offset) and isinstance(a, Quantity):
        if not subtract and a.dims == _axes(("C", 1)):
            return Quantity(dims=_axes(("K", 1)), scale=a.scale)
        if subtract and a.dims == _axes(("K", 1)):
            return Quantity(dims=_axes(("C", 1)), scale=a.scale)
        return TOP
    if isinstance(a, _Offset) and isinstance(b, Quantity):
        if not subtract and b.dims == _axes(("C", 1)):
            return Quantity(dims=_axes(("K", 1)), scale=b.scale)
        return TOP
    if isinstance(a, _Bottom) or isinstance(b, _Bottom):
        return BOTTOM
    if isinstance(a, (_Top, _Offset)) or isinstance(b, (_Top, _Offset)):
        return TOP
    if isinstance(a, _Const) and isinstance(b, _Const):
        return _Const()
    if isinstance(a, _Const):
        return b
    if isinstance(b, _Const):
        return a
    assert isinstance(a, Quantity) and isinstance(b, Quantity)
    if a.dims != b.dims:
        mismatches.append(_Mismatch(line=line, left=a, right=b, kind="dims"))
        return TOP
    if not _same_scale(a.scale, b.scale):
        mismatches.append(_Mismatch(line=line, left=a, right=b, kind="scale"))
        return TOP
    return a


# ---------------------------------------------------------------------------
# Return summaries (interprocedural fixpoint)
# ---------------------------------------------------------------------------

#: How many summary changes a node may go through before it is widened
#: to TOP.  Unit chains are short; real code converges in 2-3 steps.
_WIDEN_AFTER = 8


@dataclass
class _EvalContext:
    """Everything one function evaluation needs."""

    index: TreeIndex
    summaries: Mapping[str, Abstract]
    mismatches: List[_Mismatch] = field(default_factory=list)
    exp_lines: List[int] = field(default_factory=list)
    returns: List[Abstract] = field(default_factory=list)


def _bind(target: ast.expr, value: Abstract, env: Dict[str, Abstract]) -> None:
    if isinstance(target, ast.Name):
        previous = env.get(target.id)
        if (
            isinstance(previous, Quantity)
            and isinstance(value, Quantity)
            and (previous.dims != value.dims
                 or not _same_scale(previous.scale, value.scale))
        ):
            # Conflicting rebinds across branches: give up on the name
            # rather than trust whichever branch was walked last.
            env[target.id] = TOP
        else:
            env[target.id] = value
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind(element, TOP, env)


def _name_value(name: str, env: Dict[str, Abstract]) -> Abstract:
    if name in env:
        return env[name]
    if name in _OFFSET_NAMES:
        return _Offset()
    if name in _KNOWN_CONSTANTS:
        return _KNOWN_CONSTANTS[name]
    if name in _SCALE_NAMES:
        return _Const(_SCALE_NAMES[name])
    suffixed = _suffix_of(name)
    if suffixed is not None:
        return suffixed
    return TOP


def _call_value(node: ast.Call, env: Dict[str, Abstract], ctx: _EvalContext) -> Abstract:
    # Evaluate arguments first: mismatches inside them must be seen.
    arg_values = [_eval(argument, env, ctx) for argument in node.args]
    for keyword in node.keywords:
        _eval(keyword.value, env, ctx)
    func = node.func
    bare = func.id if isinstance(func, ast.Name) else None
    if bare in ("min", "max", "abs", "float", "round", "sorted"):
        joined: Abstract = BOTTOM
        for value in arg_values:
            joined = join(joined, value)
        if isinstance(joined, (Quantity, _Const)):
            return joined
        return TOP
    name, candidates = call_candidates(ctx.index, func)
    if candidates:
        summary: Abstract = BOTTOM
        for candidate in candidates:
            summary = join(summary, ctx.summaries.get(node_id(candidate), BOTTOM))
        if isinstance(summary, (Quantity, _Bottom)):
            return summary
    suffixed = _suffix_of(name) if name else None
    if suffixed is not None:
        return suffixed
    return TOP


def _eval(node: ast.expr, env: Dict[str, Abstract], ctx: _EvalContext) -> Abstract:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
            return TOP
        if float(node.value) == _OFFSET_VALUE:
            return _Offset()
        return _Const(float(node.value))
    if isinstance(node, ast.Name):
        return _name_value(node.id, env)
    if isinstance(node, ast.Attribute):
        _eval_children(node.value, env, ctx)
        if node.attr in _OFFSET_NAMES:
            return _Offset()
        if node.attr in _KNOWN_CONSTANTS:
            return _KNOWN_CONSTANTS[node.attr]
        if node.attr in _SCALE_NAMES:
            return _Const(_SCALE_NAMES[node.attr])
        suffixed = _suffix_of(node.attr)
        return suffixed if suffixed is not None else TOP
    if isinstance(node, ast.Subscript):
        _eval_children(node.slice, env, ctx)
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            suffixed = _suffix_of(index.value)
            if suffixed is not None:
                return suffixed
            return TOP
        container = _eval(node.value, env, ctx)
        # Indexing a homogeneous united container yields its unit.
        return container if isinstance(container, Quantity) else TOP
    if isinstance(node, ast.UnaryOp):
        operand = _eval(node.operand, env, ctx)
        if isinstance(node.op, (ast.UAdd, ast.USub)):
            return operand
        return TOP
    if isinstance(node, ast.BinOp):
        left = _eval(node.left, env, ctx)
        right = _eval(node.right, env, ctx)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return add_or_compare(
                left, right, node.lineno, ctx.mismatches,
                subtract=isinstance(node.op, ast.Sub),
            )
        if isinstance(node.op, ast.Mult):
            return multiply(left, right)
        if isinstance(node.op, ast.Div):
            return multiply(left, right, divide=True)
        if isinstance(node.op, ast.Pow):
            result, fractional = power(left, right)
            if fractional:
                ctx.exp_lines.append(node.lineno)
            return result
        return TOP
    if isinstance(node, ast.Compare):
        values = [_eval(node.left, env, ctx)]
        values.extend(_eval(cmp, env, ctx) for cmp in node.comparators)
        if all(isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE))
               for op in node.ops):
            for previous, current in zip(values, values[1:]):
                scratch: List[_Mismatch] = []
                add_or_compare(previous, current, node.lineno, scratch)
                ctx.mismatches.extend(scratch)
        return TOP
    if isinstance(node, ast.IfExp):
        _eval(node.test, env, ctx)
        return join(_eval(node.body, env, ctx), _eval(node.orelse, env, ctx))
    if isinstance(node, ast.NamedExpr):
        value = _eval(node.value, env, ctx)
        _bind(node.target, value, env)
        return value
    if isinstance(node, ast.Call):
        return _call_value(node, env, ctx)
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            _eval(value, env, ctx)
        return TOP
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            _eval(element, env, ctx)
        return TOP
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if key is not None:
                _eval(key, env, ctx)
        for value in node.values:
            _eval(value, env, ctx)
        return TOP
    if isinstance(node, ast.JoinedStr):
        for part in node.values:
            if isinstance(part, ast.FormattedValue):
                _eval(part.value, env, ctx)
        return TOP
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        # Comprehensions run in their own frame; bind loop targets to
        # TOP so element expressions still get mismatch-checked.
        scratch_env = dict(env)
        for generator in node.generators:
            _eval(generator.iter, scratch_env, ctx)
            _bind(generator.target, TOP, scratch_env)
            for condition in generator.ifs:
                _eval(condition, scratch_env, ctx)
        if isinstance(node, ast.DictComp):
            _eval(node.key, scratch_env, ctx)
            _eval(node.value, scratch_env, ctx)
        else:
            _eval(node.elt, scratch_env, ctx)
        return TOP
    if isinstance(node, ast.Starred):
        return _eval(node.value, env, ctx)
    if isinstance(node, ast.Lambda):
        return TOP
    return TOP


def _eval_children(node: ast.expr, env: Dict[str, Abstract], ctx: _EvalContext) -> None:
    """Evaluate an expression only for its side effects (checks)."""
    if isinstance(node, ast.expr):
        _eval(node, env, ctx)


def _exec_block(
    statements: Sequence[ast.stmt], env: Dict[str, Abstract], ctx: _EvalContext
) -> None:
    for statement in statements:
        _exec_stmt(statement, env, ctx)


def _exec_stmt(stmt: ast.stmt, env: Dict[str, Abstract], ctx: _EvalContext) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # separate scope, separate graph node
    if isinstance(stmt, ast.Assign):
        value = _eval(stmt.value, env, ctx)
        for target in stmt.targets:
            _bind(target, value, env)
        return
    if isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            _bind(stmt.target, _eval(stmt.value, env, ctx), env)
        return
    if isinstance(stmt, ast.AugAssign):
        if not isinstance(stmt.target, ast.Name):
            _eval(stmt.value, env, ctx)
            return
        current = _name_value(stmt.target.id, env)
        operand = _eval(stmt.value, env, ctx)
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            result = add_or_compare(
                current, operand, stmt.lineno, ctx.mismatches,
                subtract=isinstance(stmt.op, ast.Sub),
            )
        elif isinstance(stmt.op, ast.Mult):
            result = multiply(current, operand)
        elif isinstance(stmt.op, ast.Div):
            result = multiply(current, operand, divide=True)
        else:
            result = TOP
        env[stmt.target.id] = result
        return
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            ctx.returns.append(_eval(stmt.value, env, ctx))
        return
    if isinstance(stmt, ast.Expr):
        _eval(stmt.value, env, ctx)
        return
    if isinstance(stmt, ast.If):
        _eval(stmt.test, env, ctx)
        _exec_block(stmt.body, env, ctx)
        _exec_block(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        _eval(stmt.iter, env, ctx)
        _bind(stmt.target, TOP, env)
        _exec_block(stmt.body, env, ctx)
        _exec_block(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, ast.While):
        _eval(stmt.test, env, ctx)
        _exec_block(stmt.body, env, ctx)
        _exec_block(stmt.orelse, env, ctx)
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            _eval(item.context_expr, env, ctx)
            if item.optional_vars is not None:
                _bind(item.optional_vars, TOP, env)
        _exec_block(stmt.body, env, ctx)
        return
    if isinstance(stmt, ast.Try):
        _exec_block(stmt.body, env, ctx)
        for handler in stmt.handlers:
            _exec_block(handler.body, env, ctx)
        _exec_block(stmt.orelse, env, ctx)
        _exec_block(stmt.finalbody, env, ctx)
        return
    if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        _eval(stmt.subject, env, ctx)
        for case in stmt.cases:
            if case.guard is not None:
                _eval(case.guard, env, ctx)
            _exec_block(case.body, env, ctx)
        return
    if isinstance(stmt, ast.Assert):
        _eval(stmt.test, env, ctx)
        return
    if isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            _eval(stmt.exc, env, ctx)
        return
    # Pass/Break/Continue/Import/Global/Nonlocal/Delete: nothing to track.


def _initial_env(info: FunctionInfo) -> Dict[str, Abstract]:
    env: Dict[str, Abstract] = {}
    args = info.node.args
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for arg in every:
        suffixed = _suffix_of(arg.arg)
        if suffixed is not None:
            env[arg.arg] = suffixed
    return env


def _evaluate_function(
    info: FunctionInfo, index: TreeIndex, summaries: Mapping[str, Abstract]
) -> _EvalContext:
    ctx = _EvalContext(index=index, summaries=summaries)
    env = _initial_env(info)
    _exec_block(info.node.body, env, ctx)
    return ctx


def _return_summary(ctx: _EvalContext) -> Abstract:
    if not ctx.returns:
        return TOP
    joined: Abstract = BOTTOM
    for value in ctx.returns:
        joined = join(joined, value)
    return joined


def solve_return_summaries(
    index: TreeIndex, graph: CallGraph
) -> Dict[str, Abstract]:
    """Fixpoint return-unit summary for every function in the tree.

    Uses widening: a node whose summary keeps changing (a unit-algebra
    cycle through recursion) is pinned to TOP after
    :data:`_WIDEN_AFTER` changes, guaranteeing termination even where
    the quantity domain is not a finite-height lattice.
    """
    changes: Dict[str, int] = {}

    def transfer(
        nid: str, info: FunctionInfo, summaries: Mapping[str, Abstract]
    ) -> Abstract:
        computed = _return_summary(_evaluate_function(info, index, summaries))
        if computed != summaries.get(nid, BOTTOM):
            changes[nid] = changes.get(nid, 0) + 1
            if changes[nid] > _WIDEN_AFTER:
                return TOP
        return computed

    return solve_summaries(graph, transfer, bottom=BOTTOM)


# ---------------------------------------------------------------------------
# Finding emission
# ---------------------------------------------------------------------------


def in_dim_scope(rel: str, scope: Tuple[str, ...] = DEFAULT_DIM_SCOPE) -> bool:
    """Whether the DIM rules apply to this relative path."""
    return any(rel.startswith(prefix) for prefix in scope)


def check(
    index: TreeIndex,
    graph: CallGraph,
    summaries: Optional[Mapping[str, Abstract]] = None,
    scope: Tuple[str, ...] = DEFAULT_DIM_SCOPE,
) -> List[Finding]:
    """Run DIM-MISMATCH / DIM-RETURN / DIM-EXP over the indexed tree."""
    if summaries is None:
        summaries = solve_return_summaries(index, graph)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str, str]] = set()

    def emit(path: str, line: int, rule: str, severity: str, message: str,
             snippet: str) -> None:
        key = (path, line, rule, message)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                path=path,
                line=line,
                rule=rule,
                severity=severity,
                message=message,
                snippet=snippet,
            )
        )

    for nid in sorted(graph.nodes):
        info = graph.nodes[nid]
        if not in_dim_scope(info.file.rel, scope):
            continue
        ctx = _evaluate_function(info, index, summaries)
        for mismatch in ctx.mismatches:
            if mismatch.kind == "dims":
                detail = (
                    f"different dimensions "
                    f"({mismatch.left.describe()} vs {mismatch.right.describe()})"
                )
            else:
                detail = (
                    f"same dimension, mixed magnitudes "
                    f"(x{mismatch.left.scale:.0e} vs x{mismatch.right.scale:.0e})"
                )
            emit(
                info.file.rel,
                mismatch.line,
                "DIM-MISMATCH",
                "error",
                f"in `{info.qualname}`: arithmetic combines incompatible "
                f"quantities: {detail}",
                info.file.snippet(mismatch.line),
            )
        for line in ctx.exp_lines:
            emit(
                info.file.rel,
                line,
                "DIM-EXP",
                "warning",
                f"in `{info.qualname}`: united quantity raised to a "
                "non-integer power; the exponent vector would be fractional",
                info.file.snippet(line),
            )
        declared = _suffix_of(info.name)
        if declared is not None:
            inferred = _return_summary(ctx)
            if isinstance(inferred, Quantity) and (
                inferred.dims != declared.dims
                or not _same_scale(inferred.scale, declared.scale)
            ):
                emit(
                    info.file.rel,
                    info.node.lineno,
                    "DIM-RETURN",
                    "error",
                    f"`{info.qualname}` is suffixed "
                    f"`_{unit_of_name(info.name)}` "
                    f"({declared.describe()}) but returns "
                    f"{inferred.describe()}",
                    info.file.snippet(info.node.lineno),
                )
    findings.sort()
    return findings
