#!/usr/bin/env python
"""Experimental Scenario I (Figure 3) on a chosen set of applications.

Profiles each application at nominal V/f, derives its Eq. 7 target
frequencies, re-simulates at the scaled operating points, and prints the
five Figure 3 panels as one table.

Run:  python examples/power_optimization.py [app ...]
      (default: FMM LU Ocean Cholesky Radix)
"""

import sys

from repro.harness import ExperimentContext, render_table, run_scenario1
from repro.workloads import workload_by_name

DEFAULT_APPS = ("FMM", "LU", "Ocean", "Cholesky", "Radix")


def main(argv) -> None:
    apps = argv[1:] or list(DEFAULT_APPS)
    models = [workload_by_name(app) for app in apps]

    print("Building the experiment context (runs the calibration ubench)...")
    context = ExperimentContext(workload_scale=0.25)
    print(
        f"  max operational power (1 core @ 100 C): "
        f"{context.calibration.max_operational_power_w:.1f} W\n"
    )

    results = run_scenario1(context, models)

    rows = []
    for app in apps:
        for r in results[app]:
            rows.append(
                [
                    app,
                    r.n,
                    r.nominal_efficiency,
                    r.actual_speedup,
                    r.normalized_power,
                    r.normalized_power_density,
                    r.average_temperature_c,
                    r.frequency_hz / 1e9,
                    r.voltage,
                ]
            )
    print(
        render_table(
            [
                "app",
                "N",
                "eps_n",
                "speedup",
                "norm-P",
                "norm-dens",
                "T (C)",
                "f (GHz)",
                "V",
            ],
            rows,
            title="Figure 3: experimental Scenario I",
        )
    )

    print(
        "\nReading the table like the paper does:\n"
        "  * eps_n falls as N grows (parallel overheads);\n"
        "  * speedup > 1 despite the iso-performance target: chip DVFS\n"
        "    does not slow the 75 ns memory, so memory-bound codes gain;\n"
        "  * norm-P < 1 is the power saving; poor scalers see it stagnate\n"
        "    or recede at 16 cores;\n"
        "  * norm-dens collapses roughly an order of magnitude by N=16;\n"
        "  * temperature falls toward the 45 C ambient, fastest for the\n"
        "    power-hungry applications."
    )


if __name__ == "__main__":
    main(sys.argv)
