"""Property-based tests for the fault-tolerance layer (hypothesis).

Three families of invariant, each checked over a large space of
generated inputs:

* **chaos equivalence** — a sweep sabotaged by any recoverable fault
  plan converges to exactly the fault-free serial result;
* **resume equivalence** — a sweep interrupted by quarantine and then
  resumed (cache replay plus re-attempts) is indistinguishable from an
  uninterrupted run;
* **codec/journal idempotence** — cache round-trips and journal
  round-trips are lossless for every representable value.

Together the suites here generate well over 200 distinct fault plans
per run.  Plans are restricted to ``raise`` faults: they exercise the
full retry/quarantine/resume logic in-process, which keeps hundreds of
examples affordable (the process-farm kinds are covered deterministically
in ``test_retry.py`` and ``test_chaos.py``).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleOperatingPoint
from repro.harness.executor import (
    ResultCache,
    RetryPolicy,
    SweepExecutor,
    config_key,
    decode_value,
    encode_value,
)
from repro.harness.faults import FaultPlan
from repro.harness.journal import JournalEntry, SweepJournal, load_journal
from repro.harness.profiling import SimPointRow


# ---------------------------------------------------------------------------
# Evaluators and strategies.
# ---------------------------------------------------------------------------


def evaluate(point):
    """Deterministic evaluator with a band of infeasible physics."""
    if point % 7 == 3:
        raise InfeasibleOperatingPoint(f"point {point} infeasible")
    return SimPointRow(
        app=f"app-{point}",
        n=point,
        frequency_hz=3.2e9,
        voltage=1.1,
        execution_time_ps=1000.0 * (point + 1),
        total_power_w=float(point) * 1.5,
        core_power_density_w_m2=1.0,
        average_temperature_c=45.0,
        average_cpi=1.0,
        l1_miss_rate=0.01,
        memory_stall_fraction=0.1,
        bus_utilisation=0.2,
    )


def key_for(point):
    return {"kind": "property-point", "point": point}


def fast_policy(max_retries):
    return RetryPolicy(
        max_retries=max_retries, backoff_base_s=0.0, backoff_max_s=0.0
    )


def outcome_signature(outcome):
    """Everything observable about a point's result (not its journey)."""
    failure = outcome.failure
    return (
        outcome.index,
        outcome.value,
        None if failure is None else (failure.error_type, failure.message),
    )


points_lists = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=10, unique=True
)

recoverable_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=0.0, max_value=0.8),
    kinds=st.just(("raise",)),
    max_failing_attempts=st.integers(min_value=1, max_value=2),
    permanent_rate=st.just(0.0),
)

lossy_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    rate=st.floats(min_value=0.1, max_value=1.0),
    kinds=st.just(("raise",)),
    max_failing_attempts=st.integers(min_value=1, max_value=3),
    permanent_rate=st.floats(min_value=0.0, max_value=1.0),
)

json_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

json_values = st.recursive(
    json_leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


# ---------------------------------------------------------------------------
# Chaos equivalence.
# ---------------------------------------------------------------------------


class TestChaosEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(plan=recoverable_plans, points=points_lists)
    def test_recoverable_chaos_matches_clean_serial(self, plan, points):
        clean = SweepExecutor().map(evaluate, points)
        chaotic = SweepExecutor(
            retry=fast_policy(plan.max_failing_attempts), fault_plan=plan
        ).map(evaluate, points)
        assert [outcome_signature(o) for o in chaotic] == [
            outcome_signature(o) for o in clean
        ]

    @settings(max_examples=40, deadline=None)
    @given(plan=lossy_plans, points=points_lists)
    def test_lossy_chaos_quarantines_but_never_corrupts(self, plan, points):
        # Whatever the plan does, surviving points carry exactly the
        # clean values, and every loss is an explicitly retryable
        # quarantine — never a silently wrong result.
        clean = SweepExecutor().map(evaluate, points)
        chaotic = SweepExecutor(
            retry=fast_policy(1), fault_plan=plan
        ).map(evaluate, points)
        for before, after in zip(clean, chaotic):
            if after.failure is not None and after.failure.retryable:
                assert after.value is None
            else:
                assert outcome_signature(after) == outcome_signature(before)


# ---------------------------------------------------------------------------
# Resume equivalence.
# ---------------------------------------------------------------------------


class TestResumeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(plan=lossy_plans, points=points_lists)
    def test_interrupted_then_resumed_matches_uninterrupted(
        self, plan, points
    ):
        keys = [key_for(p) for p in points]
        clean = SweepExecutor().map(evaluate, points)
        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache(root)
            with SweepJournal(cache.root, "run", command="prop") as journal:
                first = SweepExecutor(
                    cache=cache,
                    retry=fast_policy(1),
                    fault_plan=plan,
                    journal=journal,
                )
                interrupted = first.map(evaluate, points, key_configs=keys)
            with SweepJournal(
                cache.root, "run", command="prop", resume=True
            ) as journal:
                second = SweepExecutor(
                    cache=ResultCache(root), journal=journal
                )
                resumed = second.map(evaluate, points, key_configs=keys)
                counts = journal.counts()

        assert [outcome_signature(o) for o in resumed] == [
            outcome_signature(o) for o in clean
        ]
        # Only quarantined points were re-evaluated; every point the
        # first run completed (ok or deterministically infeasible)
        # replayed from the cache.
        for before, after in zip(interrupted, resumed):
            survived = (
                before.failure is None or not before.failure.retryable
            )
            assert after.cached == survived
        # And the journal's final state agrees with the clean run.
        assert counts["failed"] == sum(1 for o in clean if not o.ok)

    @settings(max_examples=25, deadline=None)
    @given(points=points_lists)
    def test_resume_of_a_complete_run_evaluates_nothing(self, points):
        keys = [key_for(p) for p in points]
        with tempfile.TemporaryDirectory() as root:
            SweepExecutor(cache=ResultCache(root)).map(
                evaluate, points, key_configs=keys
            )
            warm = SweepExecutor(cache=ResultCache(root))
            outcomes = warm.map(evaluate, points, key_configs=keys)
        assert warm.stats.evaluated == 0
        assert all(o.cached for o in outcomes)


# ---------------------------------------------------------------------------
# Codec and journal idempotence.
# ---------------------------------------------------------------------------


class TestRoundTrips:
    @settings(max_examples=80, deadline=None)
    @given(value=json_values)
    def test_cache_codec_round_trips_losslessly(self, value):
        assert decode_value(encode_value(value)) == value

    @settings(max_examples=60, deadline=None)
    @given(
        config=st.dictionaries(
            st.text(min_size=1, max_size=8), json_leaves, max_size=5
        )
    )
    def test_config_key_is_order_insensitive_and_stable(self, config):
        shuffled = dict(reversed(list(config.items())))
        assert config_key(config) == config_key(shuffled)
        assert config_key(config) == config_key(dict(config))

    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.builds(
                JournalEntry,
                key=st.text(
                    alphabet="abcdef0123456789", min_size=1, max_size=8
                ),
                status=st.sampled_from(["ok", "failed"]),
                attempts=st.integers(min_value=1, max_value=9),
                cached=st.booleans(),
                retryable=st.booleans(),
            ),
            max_size=12,
        )
    )
    def test_journal_round_trips_latest_entry_per_key(self, entries):
        expected = {}
        for entry in entries:
            expected[entry.key] = entry
        with tempfile.TemporaryDirectory() as root:
            with SweepJournal(root, "run", command="prop") as journal:
                for entry in entries:
                    journal.record(entry)
                path = journal.path
            _, loaded = load_journal(path)
        # error_type=None and wall_s default both survive the trip.
        assert loaded == expected
