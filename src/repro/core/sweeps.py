"""The exact parameter sweeps behind the paper's Figures 1 and 2.

Figure 1 plots normalised power consumption versus nominal parallel
efficiency for N in {2, 4, 8, 16, 32}, once per technology node (130 nm
and 65 nm), all configurations forced to match the 1-core nominal
performance, with the sample application's operating points marked.

Figure 2 plots speedup versus N (1..32) under the 1-core power budget at
``eps_n = 1`` for both nodes.

These helpers return plain data records so the benchmark harness, the
examples, and the tests can share one implementation.  Both sweeps
evaluate their grid points through a
:class:`~repro.harness.executor.SweepExecutor`, so they can fan out over
worker processes and memoize solved points; with no executor given they
run serially and uncached, matching the historical behaviour bit for
bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.efficiency import ConstantEfficiency, EfficiencyCurve, SAMPLE_APPLICATION
from repro.core.powermodel import AnalyticalChipModel
from repro.core.scenario1 import PowerOptimizationScenario
from repro.core.scenario2 import PerformanceOptimizationScenario
from repro.errors import InfeasibleOperatingPoint

#: The core counts of Figure 1's curves.
FIGURE1_CORE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: The core counts of Figure 2's x-axis.
FIGURE2_CORE_COUNTS: Tuple[int, ...] = tuple(range(1, 33))


@dataclass(frozen=True)
class Figure1Row:
    """One solved Figure 1 grid point (flat, storable, cacheable)."""

    technology: str
    n: int
    eps_n: float
    normalized_power: float
    frequency_hz: float
    voltage: float
    voltage_floored: bool


@dataclass(frozen=True)
class Figure2Row:
    """One solved Figure 2 grid point (flat, storable, cacheable)."""

    technology: str
    n: int
    eps_n: float
    speedup: float
    regime: str
    frequency_hz: float
    voltage: float


@dataclass(frozen=True)
class Figure1Curve:
    """One Figure 1 curve: normalised power vs efficiency at fixed N."""

    technology: str
    n: int
    efficiencies: Tuple[float, ...]
    normalized_power: Tuple[float, ...]
    #: The sample application's mark on this curve (eps, power), if its
    #: efficiency at this N is feasible.
    sample_mark: Optional[Tuple[float, float]]


@dataclass(frozen=True)
class Figure2Curve:
    """One Figure 2 curve: speedup vs N under the 1-core power budget."""

    technology: str
    core_counts: Tuple[int, ...]
    speedups: Tuple[float, ...]
    regimes: Tuple[str, ...]

    def peak(self) -> Tuple[int, float]:
        """(N, speedup) of the curve's maximum."""
        idx = int(np.argmax(self.speedups))
        return self.core_counts[idx], self.speedups[idx]


def _default_executor():
    # Imported lazily: repro.core must stay importable without pulling in
    # the full harness package (which itself imports this module).
    from repro.harness.executor import SweepExecutor

    return SweepExecutor()


def _solve_figure1_point(chip: AnalyticalChipModel, point: Tuple[int, float]) -> Figure1Row:
    """Worker: solve one (N, eps_n) iso-performance point."""
    n, eps_n = point
    solved = PowerOptimizationScenario(chip).solve(n, eps_n)
    return Figure1Row(
        technology=chip.tech.name,
        n=n,
        eps_n=solved.eps_n,
        normalized_power=solved.normalized_power,
        frequency_hz=solved.frequency_hz,
        voltage=solved.voltage,
        voltage_floored=solved.voltage_floored,
    )


def _solve_figure2_point(chip: AnalyticalChipModel, point: Tuple[int, float]) -> Figure2Row:
    """Worker: solve one (N, eps_n) budget-limited point."""
    n, eps_n = point
    solved = PerformanceOptimizationScenario(chip).solve(n, eps_n)
    return Figure2Row(
        technology=chip.tech.name,
        n=n,
        eps_n=eps_n,
        speedup=solved.speedup,
        regime=solved.regime,
        frequency_hz=solved.frequency_hz,
        voltage=solved.voltage,
    )


def figure1_rows(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE1_CORE_COUNTS,
    efficiency_points: int = 101,
    executor=None,
) -> List[Figure1Row]:
    """Solve the full Figure 1 grid as one flat, input-ordered row list.

    The grid is ordered curve by curve (each N, efficiencies ascending);
    infeasible points (``N * eps_n < 1``) and the rare thermal-runaway
    points are omitted, like the blank region in the paper.
    """
    executor = executor if executor is not None else _default_executor()
    efficiency_grid = [float(e) for e in np.linspace(0.01, 1.0, efficiency_points)]
    points = [(int(n), eps) for n in core_counts for eps in efficiency_grid]
    chip_description = chip.describe()
    key_configs = [
        {"kind": "figure1-point", "chip": chip_description, "n": n, "eps_n": eps}
        for n, eps in points
    ]
    outcomes = executor.map(partial(_solve_figure1_point, chip), points, key_configs)
    return [outcome.value for outcome in outcomes if outcome.ok]


def figure1_sweep(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE1_CORE_COUNTS,
    efficiency_points: int = 101,
    sample_application: EfficiencyCurve = SAMPLE_APPLICATION,
    executor=None,
) -> List[Figure1Curve]:
    """Regenerate Figure 1 for one technology node.

    Sweeps ``eps_n`` over (0, 1] for each N; infeasible points
    (``N * eps_n < 1``) are omitted like the blank region in the paper.
    """
    rows = figure1_rows(
        chip, core_counts, efficiency_points=efficiency_points, executor=executor
    )
    by_n: Dict[int, List[Figure1Row]] = {int(n): [] for n in core_counts}
    for row in rows:
        by_n[row.n].append(row)
    scenario = PowerOptimizationScenario(chip)
    curves: List[Figure1Curve] = []
    for n in core_counts:
        mark: Optional[Tuple[float, float]] = None
        try:
            sample_eps = sample_application(n)
            if n * sample_eps >= 1.0:
                sample_point = scenario.solve(n, sample_eps)
                mark = (sample_eps, sample_point.normalized_power)
        except InfeasibleOperatingPoint:
            mark = None
        solved = by_n[int(n)]
        curves.append(
            Figure1Curve(
                technology=chip.tech.name,
                n=n,
                efficiencies=tuple(p.eps_n for p in solved),
                normalized_power=tuple(p.normalized_power for p in solved),
                sample_mark=mark,
            )
        )
    return curves


def figure2_rows(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE2_CORE_COUNTS,
    efficiency: EfficiencyCurve | None = None,
    executor=None,
) -> List[Figure2Row]:
    """Solve one Figure 2 curve as a flat, input-ordered row list.

    Core counts whose static floor power already exceeds the budget are
    skipped, like :meth:`PerformanceOptimizationScenario.speedup_curve`.
    """
    executor = executor if executor is not None else _default_executor()
    curve = efficiency or ConstantEfficiency(1.0)
    # The efficiency curve is evaluated up front so workers never need to
    # pickle arbitrary callables, only (N, eps_n) pairs.
    points = [(int(n), float(curve(n))) for n in core_counts]
    chip_description = chip.describe()
    key_configs = [
        {"kind": "figure2-point", "chip": chip_description, "n": n, "eps_n": eps}
        for n, eps in points
    ]
    outcomes = executor.map(partial(_solve_figure2_point, chip), points, key_configs)
    return [outcome.value for outcome in outcomes if outcome.ok]


def figure2_sweep(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE2_CORE_COUNTS,
    efficiency: EfficiencyCurve | None = None,
    executor=None,
) -> Figure2Curve:
    """Regenerate one Figure 2 curve (speedup vs N at eps_n = 1)."""
    rows = figure2_rows(chip, core_counts, efficiency=efficiency, executor=executor)
    return Figure2Curve(
        technology=chip.tech.name,
        core_counts=tuple(p.n for p in rows),
        speedups=tuple(p.speedup for p in rows),
        regimes=tuple(p.regime for p in rows),
    )
