"""Tests for the Wattch energy model and the static-power curve."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.power import StaticPowerModel, UnitEnergies, WattchModel
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_COMPUTE, OP_LOAD


def run_simple(config=None, n_instructions=5000):
    chip = ChipMultiprocessor(config or CMPConfig())
    ops = [(OP_COMPUTE, n_instructions), (OP_LOAD, 64)]
    return chip.run([ops])


class TestUnitEnergies:
    def test_voltage_scale_quadratic(self):
        e = UnitEnergies()
        assert e.voltage_scale(1.1) == pytest.approx(1.0)
        assert e.voltage_scale(0.55) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnitEnergies(v_nominal=0.0)
        with pytest.raises(ConfigurationError):
            UnitEnergies(idle_gating=2.0)
        with pytest.raises(ConfigurationError):
            UnitEnergies().voltage_scale(-1.0)


class TestWattchModel:
    def test_power_map_covers_active_cores_and_l2(self):
        wattch = WattchModel()
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run([[(OP_COMPUTE, 1000)], [(OP_COMPUTE, 1000)]])
        power_map = wattch.dynamic_power_map(result)
        assert set(power_map) == {"core0", "core1", "l2"}
        assert all(p > 0 for p in power_map.values())

    def test_voltage_scaling_reduces_power(self):
        wattch = WattchModel()
        nominal = run_simple(CMPConfig(frequency_hz=3.2e9, voltage=1.1))
        scaled = run_simple(CMPConfig(frequency_hz=3.2e9, voltage=0.8))
        assert wattch.total_dynamic_power_w(scaled) < wattch.total_dynamic_power_w(
            nominal
        )

    def test_frequency_scaling_reduces_power(self):
        wattch = WattchModel()
        fast = run_simple(CMPConfig(frequency_hz=3.2e9, voltage=1.1))
        slow = run_simple(CMPConfig(frequency_hz=1.6e9, voltage=1.1))
        # Same work over twice the time: roughly half the power.
        ratio = wattch.total_dynamic_power_w(slow) / wattch.total_dynamic_power_w(fast)
        assert 0.4 < ratio < 0.7

    def test_busy_core_burns_more_than_stalled(self):
        wattch = WattchModel()
        chip = ChipMultiprocessor(CMPConfig())
        busy = chip.run([[(OP_COMPUTE, 20_000)]])
        stalled = ChipMultiprocessor(CMPConfig()).run(
            [[(OP_LOAD, i * 4096) for i in range(80)]]
        )
        busy_power = wattch.core_dynamic_energy_j(busy, 0) / busy.execution_time_s
        stalled_power = (
            wattch.core_dynamic_energy_j(stalled, 0) / stalled.execution_time_s
        )
        assert stalled_power < busy_power

    def test_l2_power_small_relative_to_busy_core(self):
        # Section 3.3: the L2's power density is far below the cores'.
        wattch = WattchModel()
        result = run_simple(n_instructions=20_000)
        core = wattch.core_dynamic_energy_j(result, 0)
        l2 = wattch.l2_dynamic_energy_j(result)
        assert l2 < 0.2 * core


class TestStaticPowerModel:
    def test_design_anchor(self):
        model = StaticPowerModel()
        assert model.ratio(100.0) == pytest.approx(0.35 / 0.65)

    def test_doubles_per_step(self):
        model = StaticPowerModel(doubling_celsius=25.0)
        assert model.ratio(125.0) == pytest.approx(2 * model.ratio(100.0))
        assert model.ratio(75.0) == pytest.approx(0.5 * model.ratio(100.0))

    def test_static_power(self):
        model = StaticPowerModel()
        assert model.static_power_w(10.0, 100.0) == pytest.approx(10 * 0.35 / 0.65)

    def test_split_total_roundtrip(self):
        model = StaticPowerModel()
        dynamic, static = model.split_total(100.0, 80.0)
        assert dynamic + static == pytest.approx(100.0)
        assert static == pytest.approx(model.static_power_w(dynamic, 80.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticPowerModel(design_ratio=0.0)
        with pytest.raises(ConfigurationError):
            StaticPowerModel().static_power_w(-1.0, 50.0)

    @given(t=st.floats(min_value=30.0, max_value=120.0))
    @settings(max_examples=30)
    def test_ratio_positive_and_monotone(self, t):
        model = StaticPowerModel()
        assert model.ratio(t) > 0
        assert model.ratio(t + 1.0) > model.ratio(t)
