"""Wall-clock benchmark of the SweepExecutor: jobs and cache effects.

Run directly (not collected by pytest, which only looks in ``tests/``)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_executor.py [--scale X]

Measures three things on the Figure 3 pipeline (the heaviest sweep):

1. serial (``jobs=1``) wall-clock,
2. parallel (``jobs=N``) wall-clock for N = 2 and 4,
3. warm-cache wall-clock (second run over an identical configuration).

The parallel speedup is bounded by the machine: on a box with C cores,
``jobs=4`` cannot beat ~C x, and on a single-core container the fork and
pickle overhead makes ``jobs>1`` *slower* — the executor buys wall-clock
time on real multi-core hardware, determinism and caching everywhere.
The script prints ``os.cpu_count()`` alongside the numbers so a reader
can judge the speedup against what the hardware allows.  The warm-cache
run is hardware-independent: it should evaluate nothing and take a
fraction of a second regardless of core count.
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

from repro.harness import ExperimentContext, SweepExecutor, run_scenario1
from repro.harness.executor import ResultCache
from repro.workloads import workload_by_name

CORE_COUNTS = (1, 2, 4, 8, 16)
APPS = ("FMM", "LU", "Ocean", "Cholesky", "Radix")


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def sleepy_point(seconds: float) -> float:
    """A latency-bound stand-in evaluator (pure wait, no CPU)."""
    time.sleep(seconds)
    return seconds


def overlap_probe() -> None:
    """Show the fan-out overlaps waiting even when cores do not multiply.

    Sixteen 100 ms latency-bound points take ~1.6 s serially; with
    ``jobs=4`` the pool overlaps the waits, so the wall-clock gain here
    is pure executor machinery, independent of how many cores the CPU
    governor grants this container.
    """
    points = [0.1] * 16
    serial, t1 = timed(lambda: SweepExecutor(jobs=1).map(sleepy_point, points))
    parallel, t4 = timed(
        lambda: SweepExecutor(jobs=4, chunksize=1).map(sleepy_point, points)
    )
    assert [o.value for o in serial] == [o.value for o in parallel]
    print(
        "overlap probe (16 x 100 ms latency-bound points): "
        f"jobs=1 {t1:5.2f} s, jobs=4 {t4:5.2f} s ({t1 / t4:4.2f}x)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--apps", nargs="+", default=list(APPS))
    args = parser.parse_args()

    print(f"machine: os.cpu_count() = {os.cpu_count()}")
    overlap_probe()
    print(f"workload scale: {args.scale}, apps: {' '.join(args.apps)}")
    context = ExperimentContext(workload_scale=args.scale)
    models = [workload_by_name(app) for app in args.apps]

    baseline, t_serial = timed(
        lambda: run_scenario1(
            context, models, CORE_COUNTS, executor=SweepExecutor(jobs=1)
        )
    )
    print(f"jobs=1 (serial):        {t_serial:7.2f} s")

    for jobs in (2, 4):
        result, t_par = timed(
            lambda jobs=jobs: run_scenario1(
                context, models, CORE_COUNTS, executor=SweepExecutor(jobs=jobs)
            )
        )
        match = "identical rows" if result == baseline else "ROWS DIFFER!"
        print(
            f"jobs={jobs}:                 {t_par:7.2f} s "
            f"({t_serial / t_par:4.2f}x, {match})"
        )

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        executor = SweepExecutor(jobs=1, cache=ResultCache(cache_dir))
        _, t_cold = timed(
            lambda: run_scenario1(context, models, CORE_COUNTS, executor=executor)
        )
        warm_executor = SweepExecutor(jobs=1, cache=ResultCache(cache_dir))
        warm, t_warm = timed(
            lambda: run_scenario1(
                context, models, CORE_COUNTS, executor=warm_executor
            )
        )
        match = "identical rows" if warm == baseline else "ROWS DIFFER!"
        print(f"cold cache:             {t_cold:7.2f} s")
        print(
            f"warm cache:             {t_warm:7.2f} s "
            f"({t_cold / t_warm:4.2f}x, {warm_executor.stats.evaluated} "
            f"evaluated, {warm_executor.stats.cache_hits} hits, {match})"
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
