"""Unified telemetry: structured tracing, counter timelines, exports.

The subsystem has six pieces, threaded through the simulator, the
power/thermal models, the sweep executor, and the CLI:

* :mod:`repro.telemetry.trace` — ``Span``/``Tracer`` with monotonic
  timestamps, nested spans, and a zero-allocation no-op path when
  disabled (the default);
* :mod:`repro.telemetry.timeseries` — ``CounterSampler``: bounded,
  preallocated time-series sampling of named counter channels (power,
  temperature, IPC, miss rates, bus occupancy, …) at kernel window
  boundaries, power fixed-point iterations, thermal solver steps, and
  governor decisions; same zero-alloc no-op discipline as the Tracer;
* :mod:`repro.telemetry.alerts` — declarative alert rules (thermal
  ceiling, power budget, IPC collapse, sampler overflow) evaluated over
  per-channel statistics at run finalize;
* :mod:`repro.telemetry.record` — picklable ``KernelRecord`` /
  ``PointTelemetry`` records that carry worker-side kernel stats, span
  trees, and counter samples back through the executor's outcome
  channel (and into the result cache), so ``--profile`` and timelines
  account for parallel and warm-cache sweeps;
* :mod:`repro.telemetry.manifest` — per-sweep run manifests plus JSONL
  event/span/timeline logs under ``--telemetry-dir``, with schema
  validation;
* :mod:`repro.telemetry.chrometrace` — Chrome ``trace_event`` JSON
  export with counter tracks (``repro trace export``) and plain-text
  phase metrics (``repro trace metrics``).

See docs/OBSERVABILITY.md for the artifact schema, span names, and
channel names.
"""

from repro.telemetry.alerts import (
    DEFAULT_RULES,
    AlertFinding,
    AlertRule,
    ChannelStats,
    evaluate_rules,
    stats_from_samples,
)
from repro.telemetry.chrometrace import (
    chrome_trace_document,
    export_chrome_trace,
    metrics_table,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    TIMELINE_SCHEMA,
    TelemetryRun,
    git_sha,
    latest_run_dir,
    list_run_dirs,
    load_events,
    load_manifest,
    load_spans,
    load_timeline,
    resolve_run_dir,
    validate_run_dir,
)
from repro.telemetry.record import (
    KernelRecord,
    PointTelemetry,
    begin_point_capture,
    capturing,
    end_point_capture,
    record_kernel,
)
from repro.telemetry.timeseries import (
    CounterSampler,
    SampleRecord,
    channel_values,
    disable_sampling,
    enable_sampling,
    get_sampler,
    sample,
    set_sampler,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    now_us,
    set_tracer,
    span,
)

__all__ = [
    "DEFAULT_RULES",
    "MANIFEST_SCHEMA",
    "NULL_SPAN",
    "TIMELINE_SCHEMA",
    "AlertFinding",
    "AlertRule",
    "ChannelStats",
    "CounterSampler",
    "KernelRecord",
    "PointTelemetry",
    "SampleRecord",
    "Span",
    "SpanRecord",
    "TelemetryRun",
    "Tracer",
    "begin_point_capture",
    "capturing",
    "channel_values",
    "chrome_trace_document",
    "disable_sampling",
    "disable_tracing",
    "enable_sampling",
    "enable_tracing",
    "end_point_capture",
    "evaluate_rules",
    "export_chrome_trace",
    "get_sampler",
    "get_tracer",
    "git_sha",
    "latest_run_dir",
    "list_run_dirs",
    "load_events",
    "load_manifest",
    "load_spans",
    "load_timeline",
    "metrics_table",
    "now_us",
    "record_kernel",
    "resolve_run_dir",
    "sample",
    "set_sampler",
    "set_tracer",
    "span",
    "stats_from_samples",
    "validate_run_dir",
]
