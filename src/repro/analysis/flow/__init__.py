"""Interprocedural flow analysis: call graph + dataflow fixpoint.

This subpackage gives the checkers whole-program reach:

* :mod:`repro.analysis.flow.callgraph` — a name-resolved call graph over
  the :class:`~repro.analysis.index.TreeIndex`, with a conservative
  fallback for dynamic dispatch (every same-name definition is linked);
* :mod:`repro.analysis.flow.dataflow` — a generic worklist fixpoint over
  that graph for per-function summaries (return units, taint sets,
  reachability facts).

The dimensional-analysis, transitive-determinism, and fork-safety
checkers are built on these two passes (see docs/ANALYSIS.md).
"""

from repro.analysis.flow.callgraph import (
    CallEdge,
    CallGraph,
    build_call_graph,
    call_candidates,
    node_id,
    owned_nodes,
)
from repro.analysis.flow.dataflow import (
    FixpointDiverged,
    join_sets,
    solve_summaries,
)

__all__ = [
    "CallEdge",
    "CallGraph",
    "build_call_graph",
    "call_candidates",
    "node_id",
    "owned_nodes",
    "FixpointDiverged",
    "join_sets",
    "solve_summaries",
]
