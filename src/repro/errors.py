"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model or simulator was constructed with inconsistent parameters."""


class InfeasibleOperatingPoint(ReproError):
    """The requested (V, f, N) operating point cannot be realised.

    Raised, for example, when Scenario I would need to overclock beyond the
    nominal frequency (``N * eps_n < 1``, Section 2.2 of the paper), or when
    a requested voltage falls outside the technology's legal range.
    """


class ConvergenceError(ReproError):
    """An iterative solver (thermal fixed point, bisection) failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload model was asked for an unsupported configuration.

    Some SPLASH-2 applications only run on power-of-two thread counts
    (Section 4.1); asking for e.g. 6 threads raises this.
    """
