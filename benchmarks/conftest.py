"""Shared fixtures for the figure-regeneration benchmarks.

The experimental benchmarks share one :class:`ExperimentContext` (its
construction runs the Section 3.3 calibration microbenchmark).  The
``workload_scale`` trades fidelity for wall-clock time; 0.5 keeps every
behavioural signature intact while the full Figure 3 pipeline finishes
in a couple of minutes.
"""

import pytest

from repro.harness import ExperimentContext


@pytest.fixture(scope="session")
def experiment_context():
    return ExperimentContext(workload_scale=0.5)
