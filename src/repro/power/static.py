"""Static power as a temperature-dependent fraction of dynamic power.

The experimental study models static power "as a fraction of the dynamic
power consumption [5, 38]", with the fraction "exponentially dependent on
the temperature" (Section 3.3).  The fraction is anchored at the 100 C
maximum operating temperature, where the 65 nm node attributes 35 % of
total power to leakage (i.e. a static/dynamic ratio of 0.35/0.65), and
doubles every ``doubling_celsius`` degrees — the standard subthreshold
slope the analytical model's physical leakage also exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StaticPowerModel:
    """Exponential-in-temperature static/dynamic power ratio."""

    #: Static/dynamic ratio at the design temperature (0.35/0.65 for the
    #: 65 nm node of Table 1).
    design_ratio: float = 0.35 / 0.65
    #: Temperature anchor of ``design_ratio`` (the 100 C design point).
    design_celsius: float = 100.0
    #: Degrees of temperature rise that double the leakage.
    doubling_celsius: float = 25.0

    def __post_init__(self) -> None:
        if self.design_ratio <= 0:
            raise ConfigurationError("design_ratio must be positive")
        if self.doubling_celsius <= 0:
            raise ConfigurationError("doubling_celsius must be positive")

    def ratio(self, temperature_celsius: float) -> float:
        """Static/dynamic power ratio at the given temperature."""
        exponent = (temperature_celsius - self.design_celsius) / self.doubling_celsius
        return self.design_ratio * 2.0 ** exponent

    def static_power_w(
        self, dynamic_power_w: float, temperature_celsius: float
    ) -> float:
        """Static power implied by a dynamic power at a temperature."""
        if dynamic_power_w < 0:
            raise ConfigurationError("dynamic power must be non-negative")
        return dynamic_power_w * self.ratio(temperature_celsius)

    def split_total(self, total_w: float, temperature_celsius: float):
        """Split a *total* power into (dynamic, static) at a temperature."""
        if total_w < 0:
            raise ConfigurationError("total power must be non-negative")
        r = self.ratio(temperature_celsius)
        dynamic = total_w / (1.0 + r)
        return dynamic, total_w - dynamic
