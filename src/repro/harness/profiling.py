"""Nominal-V/f profiling (the first step of Sections 4.1 and 4.2).

A profile runs an application at nominal voltage and frequency on every
supported core count, recording execution time and power.  From it come
the application's nominal parallel efficiency curve (Eq. 6), its nominal
speedups, and the single-core power baseline the Figure 3 normalisations
use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.power.chippower import ChipPowerResult
from repro.sim.cmp import SimulationResult
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class ProfileEntry:
    """One (application, N) point at nominal V/f."""

    n: int
    result: SimulationResult
    power: ChipPowerResult

    @property
    def execution_time_ps(self) -> int:
        """Measured execution time (picoseconds)."""
        return self.result.execution_time_ps


@dataclass
class ApplicationProfile:
    """An application's nominal-V/f characterisation."""

    app: str
    entries: Dict[int, ProfileEntry]

    def core_counts(self) -> List[int]:
        """Profiled core counts, ascending."""
        return sorted(self.entries)

    def nominal_efficiency(self, n: int) -> float:
        """Eq. 6 from measured times: ``T1 / (N * TN)``."""
        self._require(1)
        self._require(n)
        t1 = self.entries[1].execution_time_ps
        tn = self.entries[n].execution_time_ps
        return t1 / (n * tn)

    def nominal_speedup(self, n: int) -> float:
        """``T1 / TN`` at nominal V/f."""
        self._require(1)
        self._require(n)
        return self.entries[1].execution_time_ps / self.entries[n].execution_time_ps

    def _require(self, n: int) -> None:
        if n not in self.entries:
            raise ConfigurationError(f"{self.app}: no profile entry for N={n}")


def profile_application(
    context: ExperimentContext,
    model: WorkloadModel,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> ApplicationProfile:
    """Profile one application at nominal V/f over its supported counts."""
    entries: Dict[int, ProfileEntry] = {}
    for n in model.supported_thread_counts(core_counts):
        result, power = context.run(model, n)
        entries[n] = ProfileEntry(n=n, result=result, power=power)
    if 1 not in entries:
        raise ConfigurationError(f"{model.name}: the 1-core baseline is required")
    return ApplicationProfile(app=model.name, entries=entries)
