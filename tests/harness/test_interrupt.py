"""Regression tests: Ctrl-C must never leak sweep worker processes.

Each test launches a real coordinator process that starts a sweep whose
points block for a minute, waits until worker processes have announced
themselves, sends the coordinator a ``SIGINT``, and then asserts that
every worker pid is gone — i.e. the executor tore its children down
before letting ``KeyboardInterrupt`` propagate.  Both process lanes are
covered: the historical ``ProcessPoolExecutor`` lane and the
fault-tolerant farm.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

# The coordinator script: argv = [mark_dir, lane].  Workers drop a
# pid-named marker file before blocking, so the test knows both that the
# sweep is underway and which pids must die with it.
COORDINATOR = """
import os, sys, time

mark_dir, lane = sys.argv[1], sys.argv[2]

def slow(point):
    with open(os.path.join(mark_dir, str(os.getpid())), "w") as handle:
        handle.write(str(point))
    time.sleep(60)
    return point

from repro.harness.executor import RetryPolicy, SweepExecutor

if lane == "pool":
    executor = SweepExecutor(jobs=2)
else:
    executor = SweepExecutor(
        jobs=2, retry=RetryPolicy(max_retries=1, point_timeout_s=120)
    )
try:
    executor.map(slow, list(range(8)))
except KeyboardInterrupt:
    os._exit(43)
os._exit(0)
"""


def _wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout_s}s waiting for {what}")


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


@pytest.mark.parametrize("lane", ["pool", "farm"])
def test_sigint_kills_all_workers(tmp_path, lane):
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, "-c", COORDINATOR, str(tmp_path), lane],
        env=env,
    )
    try:
        # Both workers must be mid-point before we interrupt.
        _wait_for(
            lambda: len(list(tmp_path.iterdir())) >= 2,
            timeout_s=30,
            what="worker marker files",
        )
        worker_pids = [int(p.name) for p in tmp_path.iterdir()]
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 43

        # The coordinator is dead; its workers must not have outlived
        # it.  (A leaked worker would keep sleeping for the full 60s.)
        _wait_for(
            lambda: not any(_alive(pid) for pid in worker_pids),
            timeout_s=10,
            what=f"worker pids {worker_pids} to exit",
        )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
