"""SARIF 2.1.0 export of an analysis report (``repro check --format sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS) is the
interchange document code-scanning UIs ingest; emitting it makes the
analyzer's findings show up as annotations on pull requests instead of
lines in a CI log.  The export covers the full report state:

* live findings become ``results`` at their rule's level;
* baselined findings (present, but absorbed by the committed audit
  baseline) carry a ``suppressions`` entry of kind ``"external"``;
* findings silenced by an inline ``# repro: allow[...]`` comment are
  exported too, with kind ``"inSource"`` — suppressed is visible, not
  invisible.

:func:`validate_sarif_document` is the same required-keys-with-types
idiom the JSON report validator uses, covering every field this module
emits; the SARIF test suite runs it over generated documents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.runner import RULES, AnalysisReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-check"

#: report severity → SARIF result/configuration level.
_LEVELS: Dict[str, str] = {"error": "error", "warning": "warning"}


def _rule_descriptors() -> List[Dict[str, Any]]:
    return [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "properties": {"family": rule.family},
            "defaultConfiguration": {
                "level": _LEVELS.get(rule.severity, "warning")
            },
        }
        for rule in RULES
    ]


def _result(
    finding: Finding,
    rule_index: Mapping[str, int],
    uri_prefix: str,
    suppression_kind: Optional[str] = None,
    justification: Optional[str] = None,
) -> Dict[str, Any]:
    uri = f"{uri_prefix}/{finding.path}" if uri_prefix else finding.path
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    index = rule_index.get(finding.rule)
    if index is not None:
        result["ruleIndex"] = index
    if finding.snippet:
        result["locations"][0]["physicalLocation"]["region"]["snippet"] = {
            "text": finding.snippet
        }
    if suppression_kind is not None:
        suppression: Dict[str, Any] = {"kind": suppression_kind}
        if justification:
            suppression["justification"] = justification
        result["suppressions"] = [suppression]
    return result


def to_sarif(
    report: AnalysisReport,
    new_findings: Optional[Sequence[Finding]] = None,
    uri_prefix: str = "",
) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one report.

    ``new_findings`` is the post-baseline view (as computed by the
    CLI): findings present in the report but not listed there are
    marked externally suppressed.  ``uri_prefix`` re-roots artifact
    URIs (the report's paths are relative to the analyzed root, which
    is usually ``src/repro`` inside the repository code scanning sees).
    """
    prefix = uri_prefix.strip("/")
    rule_index = {rule.id: position for position, rule in enumerate(RULES)}
    new_set = None if new_findings is None else set(new_findings)
    results: List[Dict[str, Any]] = []
    for finding in report.findings:
        if new_set is not None and finding not in new_set:
            results.append(
                _result(
                    finding,
                    rule_index,
                    prefix,
                    suppression_kind="external",
                    justification="audited baseline entry",
                )
            )
        else:
            results.append(_result(finding, rule_index, prefix))
    for finding in report.suppressed:
        results.append(
            _result(
                finding,
                rule_index,
                prefix,
                suppression_kind="inSource",
                justification="inline `# repro: allow[...]` comment",
            )
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": _rule_descriptors(),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def validate_sarif_document(document: Mapping[str, Any]) -> List[str]:
    """Schema problems of a SARIF document (empty = valid).

    Validates every field :func:`to_sarif` emits against the SARIF
    2.1.0 shape: version/schema, driver identity, rule descriptors,
    and per-result ruleId/level/message/locations structure.
    """
    problems: List[str] = []
    if not isinstance(document, Mapping):
        return ["SARIF document must be a JSON object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    if not isinstance(document.get("$schema"), str):
        problems.append("missing $schema URI")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty list")
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, Mapping):
            problems.append(f"{where}: not an object")
            continue
        driver = run.get("tool", {})
        driver = driver.get("driver", {}) if isinstance(driver, Mapping) else {}
        if not isinstance(driver, Mapping) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}: missing tool.driver.name")
        rules = driver.get("rules", []) if isinstance(driver, Mapping) else []
        known_rules = set()
        if not isinstance(rules, list):
            problems.append(f"{where}: tool.driver.rules must be a list")
            rules = []
        for rule_position, rule in enumerate(rules):
            if not isinstance(rule, Mapping) or not isinstance(
                rule.get("id"), str
            ):
                problems.append(
                    f"{where}: rules[{rule_position}] missing string id"
                )
                continue
            known_rules.add(rule["id"])
            description = rule.get("shortDescription")
            if not isinstance(description, Mapping) or not isinstance(
                description.get("text"), str
            ):
                problems.append(
                    f"{where}: rules[{rule_position}] missing "
                    "shortDescription.text"
                )
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}: results must be a list")
            continue
        for position, result in enumerate(results):
            spot = f"{where}.results[{position}]"
            if not isinstance(result, Mapping):
                problems.append(f"{spot}: not an object")
                continue
            if not isinstance(result.get("ruleId"), str):
                problems.append(f"{spot}: missing ruleId")
            elif known_rules and result["ruleId"] not in known_rules:
                problems.append(f"{spot}: undeclared ruleId {result['ruleId']!r}")
            if result.get("level") not in ("error", "warning", "note", "none"):
                problems.append(f"{spot}: invalid level")
            message = result.get("message")
            if not isinstance(message, Mapping) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{spot}: missing message.text")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                problems.append(f"{spot}: missing locations")
                continue
            physical = locations[0]
            physical = (
                physical.get("physicalLocation", {})
                if isinstance(physical, Mapping)
                else {}
            )
            if not isinstance(physical, Mapping):
                problems.append(f"{spot}: bad physicalLocation")
                continue
            artifact = physical.get("artifactLocation")
            if not isinstance(artifact, Mapping) or not isinstance(
                artifact.get("uri"), str
            ):
                problems.append(f"{spot}: missing artifactLocation.uri")
            region = physical.get("region")
            if (
                not isinstance(region, Mapping)
                or not isinstance(region.get("startLine"), int)
                or region["startLine"] < 1
            ):
                problems.append(f"{spot}: missing positive region.startLine")
            suppressions = result.get("suppressions")
            if suppressions is not None:
                if not isinstance(suppressions, list):
                    problems.append(f"{spot}: suppressions must be a list")
                else:
                    for suppression in suppressions:
                        if not isinstance(suppression, Mapping) or suppression.get(
                            "kind"
                        ) not in ("inSource", "external"):
                            problems.append(
                                f"{spot}: suppression kind must be "
                                "inSource or external"
                            )
    return problems
