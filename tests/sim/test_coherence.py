"""Tests for the MESI protocol controller."""


from repro.sim.bus import BusConfig, SharedBus
from repro.sim.cache import Cache, CacheConfig, EXCLUSIVE, MODIFIED, SHARED
from repro.sim.clock import ClockDomain
from repro.sim.coherence import MESIController
from repro.sim.memory import MainMemory


def make_controller(n_cores=2, l1_kb=4, l2_kb=64):
    clock = ClockDomain(3.2e9)
    bus = SharedBus(BusConfig(), clock)
    memory = MainMemory()
    l1s = [
        Cache(CacheConfig(l1_kb * 1024, 64, 2)) for _ in range(n_cores)
    ]
    l2 = Cache(CacheConfig(l2_kb * 1024, 128, 8))
    return MESIController(l1s, l2, bus, memory, clock)


ADDRESS = 0x4_0000


class TestReadPath:
    def test_cold_read_fills_exclusive(self):
        ctrl = make_controller()
        done = ctrl.read(0, ADDRESS, 0)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[0].probe(line) == EXCLUSIVE
        assert done > 0
        assert ctrl.stats.l1_misses == 1
        assert ctrl.stats.l2_misses == 1
        assert ctrl.stats.memory_reads == 1

    def test_second_read_hits(self):
        ctrl = make_controller()
        t1 = ctrl.read(0, ADDRESS, 0)
        t2 = ctrl.read(0, ADDRESS, t1)
        # A hit costs exactly the L1 hit latency.
        assert t2 - t1 == ctrl.clock.cycles_to_ps(ctrl.l1_hit_cycles)
        assert ctrl.stats.l1_hits == 1

    def test_read_after_peer_read_is_shared(self):
        ctrl = make_controller()
        ctrl.read(0, ADDRESS, 0)
        ctrl.read(1, ADDRESS, 100_000)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[1].probe(line) == SHARED

    def test_l2_hit_faster_than_memory(self):
        ctrl = make_controller()
        t_memory = ctrl.read(0, ADDRESS, 0)  # cold: memory
        ctrl.l1s[0].invalidate(ctrl.l1s[0].line_address(ADDRESS))
        ctrl._drop_sharer(ctrl.l1s[0].line_address(ADDRESS), 0)
        start = 10_000_000
        t_l2 = ctrl.read(0, ADDRESS, start) - start
        assert t_l2 < t_memory

    def test_read_from_modified_peer_is_cache_to_cache(self):
        ctrl = make_controller()
        ctrl.write(0, ADDRESS, 0)
        before = ctrl.stats.cache_to_cache
        ctrl.read(1, ADDRESS, 1_000_000)
        assert ctrl.stats.cache_to_cache == before + 1
        line = ctrl.l1s[0].line_address(ADDRESS)
        # Owner downgraded to SHARED.
        assert ctrl.l1s[0].probe(line) == SHARED
        assert ctrl.l1s[1].probe(line) == SHARED


class TestWritePath:
    def test_cold_write_fills_modified(self):
        ctrl = make_controller()
        ctrl.write(0, ADDRESS, 0)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[0].probe(line) == MODIFIED

    def test_write_hit_on_exclusive_is_silent_upgrade(self):
        ctrl = make_controller()
        ctrl.read(0, ADDRESS, 0)  # EXCLUSIVE
        transactions_before = ctrl.bus.transactions
        ctrl.write(0, ADDRESS, 1_000_000)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[0].probe(line) == MODIFIED
        assert ctrl.bus.transactions == transactions_before  # no bus traffic

    def test_write_on_shared_upgrades_and_invalidates(self):
        ctrl = make_controller()
        ctrl.read(0, ADDRESS, 0)
        ctrl.read(1, ADDRESS, 100_000)  # both SHARED
        ctrl.write(0, ADDRESS, 1_000_000)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[0].probe(line) == MODIFIED
        assert ctrl.l1s[1].probe(line) is None
        assert ctrl.stats.upgrades == 1
        assert ctrl.stats.invalidations == 1

    def test_write_miss_invalidates_modified_owner(self):
        ctrl = make_controller()
        ctrl.write(0, ADDRESS, 0)
        ctrl.write(1, ADDRESS, 1_000_000)
        line = ctrl.l1s[0].line_address(ADDRESS)
        assert ctrl.l1s[0].probe(line) is None
        assert ctrl.l1s[1].probe(line) == MODIFIED
        assert ctrl.stats.cache_to_cache == 1

    def test_write_ping_pong(self):
        ctrl = make_controller()
        t = 0
        for i in range(6):
            t = ctrl.write(i % 2, ADDRESS, t)
        # Each ownership change invalidates the other core once (after
        # the first two cold fills... first write is cold, rest c2c).
        assert ctrl.stats.cache_to_cache == 5


class TestEvictionsAndSharers:
    def test_dirty_eviction_writes_back(self):
        ctrl = make_controller(l1_kb=1)  # tiny L1: 16 lines, 2-way
        base = 0x10000
        ctrl.write(0, base, 0)
        # Walk enough conflicting lines to evict the dirty one.
        n_sets = ctrl.l1s[0].config.n_sets
        line_bytes = ctrl.l1s[0].config.line_bytes
        for i in range(1, 4):
            ctrl.read(0, base + i * n_sets * line_bytes, i * 1_000_000)
        assert ctrl.stats.writebacks >= 1

    def test_sharer_map_consistent_after_eviction(self):
        ctrl = make_controller(l1_kb=1)
        base = 0x10000
        n_sets = ctrl.l1s[0].config.n_sets
        line_bytes = ctrl.l1s[0].config.line_bytes
        addresses = [base + i * n_sets * line_bytes for i in range(8)]
        t = 0
        for addr in addresses:
            t = ctrl.read(0, addr, t)
        # Every line the sharer map claims core 0 holds must be resident.
        for line in ctrl._sharers:
            for holder in ctrl.sharer_ids(line):
                assert ctrl.l1s[holder].probe(line) is not None

    def test_l2_catches_l1_victim_reread(self):
        ctrl = make_controller(l1_kb=1)
        base = 0x10000
        n_sets = ctrl.l1s[0].config.n_sets
        line_bytes = ctrl.l1s[0].config.line_bytes
        t = 0
        addresses = [base + i * n_sets * line_bytes for i in range(8)]
        for addr in addresses:
            t = ctrl.read(0, addr, t) + 1000
        memory_before = ctrl.stats.memory_reads
        # Re-reading an evicted line should hit the (inclusive) L2.
        ctrl.read(0, addresses[0], t + 1_000_000)
        assert ctrl.stats.memory_reads == memory_before


class TestDVFSInteraction:
    def test_memory_cheaper_in_cycles_when_slow(self):
        # The paper's key mechanism: 75 ns costs 240 cycles at 3.2 GHz
        # but only 15 cycles at 200 MHz.
        fast = make_controller()
        t_fast = fast.read(0, ADDRESS, 0)

        slow = make_controller()
        slow_clock = ClockDomain(200e6)
        slow.set_clock(slow_clock)
        t_slow = slow.read(0, ADDRESS, 0)

        cycles_fast = ClockDomain(3.2e9).ps_to_cycles(t_fast)
        cycles_slow = slow_clock.ps_to_cycles(t_slow)
        assert cycles_slow < cycles_fast
