"""Parameter sensitivity of the analytical model's headline outputs.

An analytical model is only as credible as its robustness to the
constants nobody measured precisely (alpha, the static fraction, the
voltage floor, the thermal spreading split...).  This module perturbs
each parameter by a relative step and reports the elasticity of a chosen
headline metric — by default Figure 2's peak speedup or Figure 1's
normalized power at a reference point — producing the tornado-style
ranking a reviewer would ask for.

Elasticity is ``(dM / M) / (dp / p)`` estimated by a central finite
difference, so +1 means "a 1 % parameter change moves the metric 1 % in
the same direction".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.powermodel import AnalyticalChipModel
from repro.core.scenario1 import PowerOptimizationScenario
from repro.core.sweeps import figure2_sweep
from repro.errors import ConfigurationError
from repro.tech.technology import TechnologyNode

#: The perturbable technology/model parameters and how to apply them.
#: Each entry maps a parameter name to a function building a perturbed
#: chip model from (node, factor).
_PARAMETERS: Dict[str, Callable[[TechnologyNode, float], AnalyticalChipModel]] = {
    "alpha": lambda node, f: AnalyticalChipModel(replace(node, alpha=node.alpha * f)),
    "vth": lambda node, f: AnalyticalChipModel(replace(node, vth=node.vth * f)),
    "static_fraction": lambda node, f: AnalyticalChipModel(
        replace(
            node,
            static_fraction_nominal=min(0.95, node.static_fraction_nominal * f),
        )
    ),
    "noise_margin": lambda node, f: AnalyticalChipModel(
        replace(node, noise_margin_factor=node.noise_margin_factor * f)
    ),
    "f_nominal": lambda node, f: AnalyticalChipModel(
        replace(node, f_nominal=node.f_nominal * f)
    ),
}


@dataclass(frozen=True)
class SensitivityEntry:
    """One parameter's measured elasticity."""

    parameter: str
    baseline_metric: float
    metric_up: float
    metric_down: float
    step: float

    @property
    def elasticity(self) -> float:
        """Central-difference elasticity (d log M / d log p)."""
        if self.baseline_metric == 0:
            return float("nan")
        dm = (self.metric_up - self.metric_down) / (2 * self.baseline_metric)
        return dm / self.step

    @property
    def magnitude(self) -> float:
        """|elasticity| — the tornado-chart ordering key."""
        e = self.elasticity
        return abs(e)


def peak_speedup_metric(chip: AnalyticalChipModel) -> float:
    """Figure 2's headline: peak budget-legal speedup."""
    return figure2_sweep(chip).peak()[1]


def iso_performance_power_metric(
    n: int = 8, eps: float = 0.8
) -> Callable[[AnalyticalChipModel], float]:
    """Figure 1's headline: normalized power at a reference (N, eps)."""

    def metric(chip: AnalyticalChipModel) -> float:
        return PowerOptimizationScenario(chip).solve(n, eps).normalized_power

    return metric


def sensitivity_analysis(
    node: TechnologyNode,
    metric: Callable[[AnalyticalChipModel], float] = peak_speedup_metric,
    parameters: Optional[Sequence[str]] = None,
    step: float = 0.05,
) -> List[SensitivityEntry]:
    """Elasticities of ``metric`` to each model parameter, ranked.

    ``step`` is the relative perturbation (default +/-5 %).  Returns
    entries sorted by magnitude, largest first.
    """
    if not 0.0 < step < 0.5:
        raise ConfigurationError("step must be in (0, 0.5)")
    names = list(parameters) if parameters is not None else list(_PARAMETERS)
    for name in names:
        if name not in _PARAMETERS:
            raise ConfigurationError(f"unknown parameter {name!r}")

    baseline = metric(AnalyticalChipModel(node))
    entries: List[SensitivityEntry] = []
    for name in names:
        build = _PARAMETERS[name]
        up = metric(build(node, 1.0 + step))
        down = metric(build(node, 1.0 - step))
        entries.append(
            SensitivityEntry(
                parameter=name,
                baseline_metric=baseline,
                metric_up=up,
                metric_down=down,
                step=step,
            )
        )
    return sorted(entries, key=lambda e: e.magnitude, reverse=True)
