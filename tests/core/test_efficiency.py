"""Tests for parallel-efficiency curve models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    AmdahlEfficiency,
    CommunicationOverheadEfficiency,
    ConstantEfficiency,
    MeasuredEfficiency,
    SAMPLE_APPLICATION,
)
from repro.errors import ConfigurationError


class TestConstantEfficiency:
    def test_value_everywhere(self):
        eff = ConstantEfficiency(0.8)
        assert eff(2) == 0.8
        assert eff(32) == 0.8

    def test_n1_is_always_one(self):
        assert ConstantEfficiency(0.5)(1) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantEfficiency(0.0)
        with pytest.raises(ConfigurationError):
            ConstantEfficiency(1.0)(0)


class TestAmdahlEfficiency:
    def test_zero_serial_fraction_is_perfect(self):
        eff = AmdahlEfficiency(0.0)
        for n in (1, 2, 8, 32):
            assert eff(n) == pytest.approx(1.0)

    def test_pure_serial_efficiency_is_1_over_n(self):
        eff = AmdahlEfficiency(1.0)
        assert eff(4) == pytest.approx(0.25)

    def test_known_value(self):
        # s = 0.1, N = 10: speedup = 1/(0.1 + 0.09) = 5.263; eps = 0.5263.
        eff = AmdahlEfficiency(0.1)
        assert eff(10) == pytest.approx(1.0 / (0.1 + 0.09) / 10.0)

    @given(
        s=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=64),
    )
    def test_bounded_and_decreasing(self, s, n):
        eff = AmdahlEfficiency(s)
        value = eff(n)
        # Upper bound up to floating-point rounding at s = 0.
        assert 0.0 < value <= 1.0 + 1e-12
        if n > 1:
            assert value <= eff(n - 1) + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmdahlEfficiency(-0.1)
        with pytest.raises(ConfigurationError):
            AmdahlEfficiency(1.1)


class TestCommunicationOverheadEfficiency:
    def test_n1_is_one(self):
        assert CommunicationOverheadEfficiency(0.5)(1) == 1.0

    def test_zero_overhead_is_perfect(self):
        eff = CommunicationOverheadEfficiency(0.0)
        assert eff(16) == 1.0

    def test_decreasing_in_n(self):
        eff = CommunicationOverheadEfficiency(0.05, growth=1.0)
        values = [eff(n) for n in (2, 4, 8, 16, 32)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_growth_exponent_effect(self):
        gentle = CommunicationOverheadEfficiency(0.05, growth=0.5)
        harsh = CommunicationOverheadEfficiency(0.05, growth=1.5)
        assert gentle(16) > harsh(16)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommunicationOverheadEfficiency(-1.0)
        with pytest.raises(ConfigurationError):
            CommunicationOverheadEfficiency(0.1, growth=0.0)


class TestMeasuredEfficiency:
    def test_exact_table_lookup(self):
        eff = MeasuredEfficiency({2: 0.9, 4: 0.8})
        assert eff(2) == 0.9
        assert eff(4) == 0.8
        assert eff(1) == 1.0

    def test_interpolation_between_points(self):
        eff = MeasuredEfficiency({2: 0.9, 8: 0.6})
        value = eff(4)
        assert 0.6 < value < 0.9
        # Log-linear in N: N=4 is the geometric midpoint of 2 and 8.
        assert value == pytest.approx(math.sqrt(0.9 * 0.6))

    def test_extrapolation_beyond_table(self):
        eff = MeasuredEfficiency({2: 0.9, 4: 0.8, 8: 0.65, 16: 0.5})
        beyond = eff(32)
        assert 0.0 < beyond < 0.5

    def test_superlinear_entries_allowed(self):
        eff = MeasuredEfficiency({2: 1.1, 4: 1.05})
        assert eff(2) == 1.1

    def test_sample_application_matches_figure1_marks(self):
        assert SAMPLE_APPLICATION(2) == 0.9
        assert SAMPLE_APPLICATION(4) == 0.8
        assert SAMPLE_APPLICATION(8) == 0.65
        assert SAMPLE_APPLICATION(16) == 0.5

    def test_table_property_includes_n1(self):
        eff = MeasuredEfficiency({2: 0.9})
        assert eff.table == {1: 1.0, 2: 0.9}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeasuredEfficiency({})
        with pytest.raises(ConfigurationError):
            MeasuredEfficiency({2: -0.5})
        with pytest.raises(ConfigurationError):
            MeasuredEfficiency({0: 0.5})

    @given(n=st.integers(min_value=1, max_value=64))
    def test_always_positive(self, n):
        assert SAMPLE_APPLICATION(n) > 0
