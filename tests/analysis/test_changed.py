"""Incremental gating: diff parsing and ``repro check --changed``."""

import subprocess

import pytest

from repro.analysis import (
    ChangedLinesError,
    SourceError,
    changed_lines,
    gate_findings,
    parse_diff,
)
from repro.analysis.findings import Finding
from repro.cli import main

SAMPLE_DIFF = """\
diff --git a/sim/engine.py b/sim/engine.py
--- a/sim/engine.py
+++ b/sim/engine.py
@@ -10,2 +12,3 @@ def step():
+    a = 1
+    b = 2
+    c = 3
@@ -40 +44 @@ def other():
+    d = 4
diff --git a/power/new_model.py b/power/new_model.py
--- /dev/null
+++ b/power/new_model.py
@@ -0,0 +1,2 @@
+NEW = 1
+ALSO = 2
diff --git a/sim/gone.py b/sim/gone.py
--- a/sim/gone.py
+++ /dev/null
@@ -1,5 +0,0 @@
-old
diff --git a/sim/shrunk.py b/sim/shrunk.py
--- a/sim/shrunk.py
+++ b/sim/shrunk.py
@@ -7,3 +7,0 @@ def trimmed():
-removed
"""


def test_parse_diff_collects_new_side_lines():
    changed = parse_diff(SAMPLE_DIFF)
    # Hunk counts honored; a missing count defaults to one line.
    assert changed["sim/engine.py"] == {12, 13, 14, 44}
    # Added files are changed in full.
    assert changed["power/new_model.py"] == {1, 2}
    # A deleted file disappears rather than mapping to /dev/null.
    assert "sim/gone.py" not in changed
    # Pure-deletion hunks leave the file present with no gating lines,
    # so its parse errors still gate.
    assert changed["sim/shrunk.py"] == set()


def _finding(path, line):
    return Finding(
        path=path,
        line=line,
        rule="DET-WALLCLOCK",
        severity="error",
        message="m",
        snippet="s",
    )


def test_gate_findings_keeps_only_diff_line_findings():
    changed = {"sim/engine.py": {12, 13}, "sim/shrunk.py": set()}
    findings = [
        _finding("sim/engine.py", 12),   # on a changed line: gates
        _finding("sim/engine.py", 99),   # pre-existing debt: passes
        _finding("power/other.py", 12),  # untouched file: passes
    ]
    errors = [
        SourceError(rel="sim/shrunk.py", message="bad syntax"),
        SourceError(rel="power/other.py", message="bad syntax"),
    ]
    gated, gated_errors = gate_findings(findings, errors, changed)
    assert [(f.path, f.line) for f in gated] == [("sim/engine.py", 12)]
    # Parse errors gate whenever their file was touched at all.
    assert [e.rel for e in gated_errors] == ["sim/shrunk.py"]


@pytest.fixture()
def git_tree(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", "-C", str(tmp_path), *argv],
            check=True,
            capture_output=True,
        )

    git("init", "-q")
    git("config", "user.email", "t@example.com")
    git("config", "user.name", "t")
    sim = tmp_path / "sim"
    sim.mkdir()
    module = sim / "mod.py"
    module.write_text("def f():\n    return 1\n")
    git("add", "-A")
    git("commit", "-q", "-m", "seed")
    return tmp_path, module, git


def test_changed_lines_reads_the_git_diff(git_tree):
    root, module, _git = git_tree
    module.write_text("def f():\n    return 2\n\n\ndef g():\n    return 3\n")
    changed = changed_lines(root, "HEAD")
    assert changed == {"sim/mod.py": {2, 3, 4, 5, 6}}


def test_changed_lines_raises_outside_a_repo(tmp_path):
    with pytest.raises(ChangedLinesError):
        changed_lines(tmp_path / "not-a-repo", "HEAD")


def test_cli_changed_gates_only_new_side_lines(git_tree, capsys):
    root, module, git = git_tree
    # Commit a pre-existing violation, then make an unrelated edit:
    # --changed must NOT gate on the old debt.
    module.write_text(
        "import time\n\ndef f():\n    return time.time()\n"
    )
    git("add", "-A")
    git("commit", "-q", "-m", "debt")
    module.write_text(
        "import time\n\ndef f():\n    return time.time()\n"
        "\ndef g():\n    return 9\n"
    )
    code = main(
        ["check", "--root", str(root), "--no-baseline", "--changed=HEAD"]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 gating finding(s)" in out

    # A violation ON a changed line still gates.
    module.write_text(
        "import time\n\ndef f():\n    return time.time()\n"
        "\ndef g():\n    return time.perf_counter()\n"
    )
    code = main(
        ["check", "--root", str(root), "--no-baseline", "--changed=HEAD"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "perf_counter" in out


def test_cli_changed_bad_ref_exits_two(git_tree, capsys):
    root, _module, _git = git_tree
    code = main(
        [
            "check",
            "--root",
            str(root),
            "--no-baseline",
            "--changed=no-such-ref",
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "no-such-ref" in captured.err or "diff" in captured.err
