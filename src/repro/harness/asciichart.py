"""Terminal-friendly ASCII charts for the figure harnesses.

The environment has no plotting stack, so the examples and benchmarks
render figures as character grids.  Two chart types cover the paper:

* :func:`xy_chart` — scatter/line families on a numeric plane
  (Figure 1's power-vs-efficiency curves, Figure 2's speedup-vs-N);
* :func:`bar_chart` — grouped horizontal bars (Figure 3's per-app
  panels);
* :func:`sparkline` — one-line level strip for sampled counter
  timelines (``repro trace timeline``).

All return plain strings; callers print them.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

#: Marker cycle for series.
MARKERS = "ox+*#@%&"

#: Density ramp for :func:`sparkline`, low to high.
SPARK_LEVELS = " .:-=+*#%@"


def xy_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    x_range: Tuple[float, float] | None = None,
    y_range: Tuple[float, float] | None = None,
) -> str:
    """Plot families of (x, y) points onto a character grid.

    Ranges default to the data's bounding box (with a small margin on
    the y side).  Points outside an explicit range are clipped away.
    """
    if not series or all(len(points) == 0 for points in series.values()):
        raise ConfigurationError("xy_chart needs at least one point")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small to render")

    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = x_range if x_range else (min(xs), max(xs))
    if y_range:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(ys), max(ys)
        pad = 0.05 * (y_hi - y_lo or 1.0)
        y_lo, y_hi = y_lo - pad, y_hi + pad
    if x_hi <= x_lo or y_hi <= y_lo:
        raise ConfigurationError("degenerate chart range")

    grid = [[" "] * width for _ in range(height)]
    for (label, points), marker in zip(series.items(), MARKERS):
        for x, y in points:
            if not (x_lo <= x <= x_hi and y_lo <= y <= y_hi):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((1.0 - (y - y_lo) / (y_hi - y_lo)) * (height - 1))
            grid[row][col] = marker

    lines: List[str] = []
    for i, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * i / (height - 1)
        prefix = f"{y_value:>8.2f} |" if i % 4 == 0 or i == height - 1 else "         |"
        lines.append(prefix + "".join(row))
    lines.append("          " + "-" * width)
    lines.append(
        f"          {x_lo:<.3g}" + " " * max(1, width - 16) + f"{x_hi:>.3g}"
    )
    if x_label:
        lines.append(f"          x: {x_label}")
    if y_label:
        lines.insert(0, f"  y: {y_label}")
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), MARKERS)
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a value series as a one-line density strip.

    Values are scaled to the series' own min/max and mapped onto
    :data:`SPARK_LEVELS`; a flat series renders at the middle level so
    a constant 80 °C does not look like zero.  Series longer than
    ``width`` are resampled by bucket mean, so the strip always fits
    one terminal line.
    """
    if not values:
        raise ConfigurationError("sparkline needs at least one value")
    if width < 1:
        raise ConfigurationError("sparkline width must be >= 1")
    points = list(values)
    if len(points) > width:
        buckets: List[float] = []
        for i in range(width):
            lo = i * len(points) // width
            hi = max(lo + 1, (i + 1) * len(points) // width)
            chunk = points[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        points = buckets
    v_lo, v_hi = min(points), max(points)
    if v_hi <= v_lo:
        return SPARK_LEVELS[len(SPARK_LEVELS) // 2] * len(points)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[round((v - v_lo) / (v_hi - v_lo) * top)] for v in points
    )


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    reference: float | None = None,
) -> str:
    """Horizontal bars, one per labelled value.

    ``reference`` draws a marker column at that value (e.g. the
    normalized-power breakeven of 1.0).
    """
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if any(v < 0 for v in values.values()):
        raise ConfigurationError("bar_chart values must be non-negative")
    v_max = max(max(values.values()), reference or 0.0) or 1.0
    label_width = max(len(label) for label in values)

    lines = []
    for label, value in values.items():
        bar_len = round(value / v_max * width)
        bar = "=" * bar_len
        if reference is not None:
            ref_col = min(width - 1, round(reference / v_max * width))
            padded = list(bar.ljust(width))
            padded[ref_col] = "|" if ref_col >= bar_len else "+"
            bar = "".join(padded).rstrip()
        lines.append(f"{label.rjust(label_width)} {bar} {value:.3g}")
    return "\n".join(lines)
