"""Figure 2 — analytical Scenario II: speedup under a 1-core power budget.

Regenerates the paper's Figure 2: speedup of N-core configurations
(N = 1..32) with ``eps_n = 1`` and the chip power capped at the 1-core
full-throttle power, for 130 nm and 65 nm.

Shape assertions (the paper's claims):

* speedup rises, peaks at a moderate N, then *declines* — even for a
  perfectly scalable application,
* the 130 nm peak is "a little over 4",
* the 65 nm curve peaks lower and earlier and collapses faster (its
  larger static share), running below the 130 nm curve beyond the peak.
"""

import pytest

from repro.core import AnalyticalChipModel, figure2_sweep
from repro.harness import render_table
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module")
def curves(request):
    return {}


@pytest.mark.parametrize("node", [NODE_130NM, NODE_65NM], ids=lambda n: n.name)
def test_figure2(benchmark, node, curves):
    chip = AnalyticalChipModel(node)
    curve = benchmark.pedantic(lambda: figure2_sweep(chip), rounds=1, iterations=1)
    curves[node.name] = curve

    lookup = dict(zip(curve.core_counts, curve.speedups))
    regimes = dict(zip(curve.core_counts, curve.regimes))
    print()
    print(
        render_table(
            ["N", "speedup", "regime"],
            [[n, lookup[n], regimes[n]] for n in (1, 2, 4, 8, 12, 16, 24, 32) if n in lookup],
            title=f"Figure 2 ({node.name}): speedup under the 1-core power budget",
        )
    )
    n_peak, s_peak = curve.peak()
    print(f"peak: speedup {s_peak:.2f} at N = {n_peak}")

    # Interior peak with strict decline afterwards.
    speedups = list(curve.speedups)
    peak_idx = speedups.index(max(speedups))
    assert 0 < peak_idx < len(speedups) - 1
    tail = speedups[peak_idx:]
    assert all(b < a for a, b in zip(tail, tail[1:]))

    if node is NODE_130NM:
        # "A little over 4".
        assert 4.0 < s_peak < 5.0

    if len(curves) == 2:
        c130, c65 = curves["130nm"], curves["65nm"]
        assert c65.peak()[1] < c130.peak()[1]
        assert c65.peak()[0] <= c130.peak()[0]
        map130 = dict(zip(c130.core_counts, c130.speedups))
        map65 = dict(zip(c65.core_counts, c65.speedups))
        for n in (10, 12, 16):
            assert map65[n] < map130[n]
