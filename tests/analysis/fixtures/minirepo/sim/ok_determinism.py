"""Determinism-clean idioms (analyzer fixture; never imported)."""

import random


def seeded_draws(seed: int) -> float:
    rng = random.Random(seed)  # seeded instance: the supported idiom
    return rng.random()


def sorted_iteration(cores: set) -> int:
    total = 0
    for core in sorted(cores):  # sorted(): canonical order
        total += core
    return total


def canonical_sum(weights: dict) -> float:
    return sum(v for _, v in sorted(weights.items()))


def ordered_loop(items: list) -> int:
    total = 0
    for item in items:  # lists preserve order: fine
        total += item
    return total
