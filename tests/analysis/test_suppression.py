"""Inline ``# repro: allow[...]`` suppression semantics."""

from pathlib import Path

from repro.analysis import AnalysisOptions, analyze_tree
from repro.analysis.source import load_source_file

from tests.analysis.conftest import FIXTURE_ROOT

SUPPRESSED = "sim/suppressed.py"


def test_suppressed_findings_do_not_gate(fixture_report):
    assert not [f for f in fixture_report.findings if f.path == SUPPRESSED]


def test_suppressed_findings_are_counted(fixture_report):
    suppressed = [f for f in fixture_report.suppressed if f.path == SUPPRESSED]
    # 2 wall-clock reads + the set-order and float-sum pair on one line.
    assert len(suppressed) >= 3
    assert {f.rule for f in suppressed} >= {"DET-WALLCLOCK", "DET-FLOAT-SUM"}


def test_comma_separated_rule_list():
    source, error = load_source_file(
        FIXTURE_ROOT / SUPPRESSED, SUPPRESSED
    )
    assert error is None
    marker_lines = [
        line
        for line, rules in source.allows.items()
        if rules == {"DET-SET-ORDER", "DET-FLOAT-SUM"}
    ]
    assert len(marker_lines) == 1
    line = marker_lines[0]
    # The comment covers its own line and the line below.
    assert source.allowed("DET-SET-ORDER", line)
    assert source.allowed("DET-FLOAT-SUM", line + 1)
    assert not source.allowed("DET-WALLCLOCK", line)
    assert not source.allowed("DET-SET-ORDER", line + 2)


def test_marker_inside_string_is_ignored():
    source, _ = load_source_file(FIXTURE_ROOT / SUPPRESSED, SUPPRESSED)
    text_lines = source.lines
    string_line = next(
        i + 1
        for i, line in enumerate(text_lines)
        if "inside a string" in line
    )
    assert not source.allowed("DET-WALLCLOCK", string_line)


def test_unsuppressed_sibling_still_fires(tmp_path: Path):
    tree = tmp_path / "sim"
    tree.mkdir()
    # The blank line matters: an allow comment covers its own line and
    # the one below, so back-to-back statements would both be absorbed.
    (tree / "half.py").write_text(
        "import time\n"
        "\n"
        "def f():\n"
        "    a = time.time()  # repro: allow[DET-WALLCLOCK] first only\n"
        "\n"
        "    b = time.time()\n"
        "    return a + b\n"
    )
    report = analyze_tree(AnalysisOptions(root=tmp_path))
    assert len(report.findings) == 1
    assert len(report.suppressed) == 1
    assert report.findings[0].line == 6
