"""EV6-like core timing model.

We do not model the 21264's out-of-order machinery structurally; what the
paper's experiments need from a core is (a) an application-dependent base
CPI for cache-resident work, (b) realistic stalls on memory misses with a
bounded amount of latency overlap (the EV6 sustains several outstanding
misses), and (c) statistical instruction-fetch behaviour.  Those are the
three knobs :class:`CoreTimingConfig` exposes; everything else (hit
latencies, coherence, contention) is emergent from the memory system.

A core consumes its thread's operation stream one op per scheduler step
and advances its local picosecond clock.  Barriers are reported to the
scheduler (:mod:`repro.sim.cmp`), which parks the core until release;
critical sections serialise through a shared lock table.

Two execution paths produce bitwise-identical counters:

* :meth:`Core.step` — the reference interpreter: one op per scheduler
  pop, every memory operation routed through the MESI controller;
* :meth:`Core.step_fast` — the fast path over a *compiled* (list-backed)
  stream: compute bursts and loads/stores that hit the local L1 in a
  suitable MESI state are resolved inline — hoisted attribute lookups,
  precomputed burst durations, batched stat accumulation — and executed
  in batches between scheduler pops.  Anything touching shared state
  (bus, locks, misses, upgrades, barriers) falls back to the reference
  machinery at exactly the scheduler position the reference interpreter
  would give it, which is what makes the two paths bitwise-identical
  (the equivalence argument is spelled out in docs/MODEL.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.cache import EXCLUSIVE, MODIFIED
from repro.sim.clock import ClockDomain
from repro.sim.coherence import MESIController
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE
from repro.units import PICO

# Core.step() statuses.
RUNNING = 0
AT_BARRIER = 1
DONE = 2


@dataclass(frozen=True)
class CoreTimingConfig:
    """Per-application core-timing knobs.

    Parameters
    ----------
    base_cpi:
        Cycles per instruction for cache-resident work on the 4-wide
        EV6-like core; compute-intensive codes with ILP sit near 0.6,
        branchy pointer-chasing codes near 1.2.
    icache_miss_rate:
        Statistical instruction-fetch miss rate; each miss stalls for an
        L2 hit.  SPLASH-2 codes have tiny instruction footprints.
    memory_parallelism:
        How much data-miss latency the core overlaps (outstanding-miss
        MLP).  1.0 = fully blocking; the EV6's non-blocking loads justify
        values up to ~2.
    lock_overhead_cycles:
        Pipeline cost of an acquire/release pair (LL/SC sequences).
    """

    base_cpi: float = 0.8
    icache_miss_rate: float = 0.001
    memory_parallelism: float = 1.5
    lock_overhead_cycles: int = 20

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError("base_cpi must be positive")
        if not 0.0 <= self.icache_miss_rate < 1.0:
            raise ConfigurationError("icache_miss_rate must be in [0, 1)")
        if self.memory_parallelism < 1.0:
            raise ConfigurationError("memory_parallelism must be >= 1")
        if self.lock_overhead_cycles < 0:
            raise ConfigurationError("lock_overhead_cycles must be >= 0")


@dataclass
class CoreStats:
    """Activity counters for one core (the Wattch inputs)."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    icache_accesses: int = 0
    critical_sections: int = 0
    busy_ps: int = 0
    stall_mem_ps: int = 0
    sync_wait_ps: int = 0
    #: Time spent in the thrifty-barrier sleep state (near-zero power).
    sleep_ps: int = 0
    end_time_ps: int = 0

    @property
    def total_active_ps(self) -> int:
        """Time the core was doing or waiting on work (not parked)."""
        return self.busy_ps + self.stall_mem_ps

    def instructions_per_cycle(self, frequency_hz: float) -> float:
        """IPC over the core's active time at its operating frequency."""
        cycles = self.total_active_ps * PICO * frequency_hz
        return self.instructions / cycles if cycles > 0 else 0.0


class LockTable:
    """Shared lock state: grant times per lock id, FIFO by request time."""

    def __init__(self) -> None:
        self._free_at: Dict[int, int] = {}
        self.contended_acquires = 0
        self.acquires = 0

    def acquire(self, lock_id: int, now_ps: int) -> int:
        """Request the lock at ``now_ps``; returns the grant time."""
        grant = max(now_ps, self._free_at.get(lock_id, 0))
        self.acquires += 1
        if grant > now_ps:
            self.contended_acquires += 1
        return grant

    def release(self, lock_id: int, at_ps: int) -> None:
        """Release the lock at ``at_ps``."""
        self._free_at[lock_id] = at_ps


class Core:
    """One EV6-like core executing a thread's operation stream."""

    def __init__(
        self,
        core_id: int,
        ops: Iterator[tuple],
        controller: MESIController,
        clock: ClockDomain,
        timing: CoreTimingConfig,
        locks: LockTable,
    ) -> None:
        self.core_id = core_id
        self._ops = iter(ops)
        self.controller = controller
        self.clock = clock
        self.timing = timing
        self.locks = locks
        self.time_ps = 0
        #: L1-hit latency in this core's clock (recomputed on DVFS).
        self._hit_ps = clock.cycles_to_ps(controller.l1_hit_cycles)
        self.stats = CoreStats()
        #: Barrier index the core is waiting at (valid after AT_BARRIER).
        self.pending_barrier: Optional[int] = None
        # -- fast-path state (see step_fast) --------------------------------
        #: Compiled (list-backed) stream and cursor.
        self._ops_list: List[tuple] = []
        self._ops_index = 0
        #: Duration/instruction table per distinct burst key (an int for a
        #: plain burst, a segment tuple for a fused one); cleared on DVFS.
        self._burst_ps: Dict = {}
        #: Whether loads/stores hitting the local L1 may bypass the
        #: controller (set by prepare_fast_path).
        self._fast_loads = False
        self._fast_stores = False
        #: Fast/slow op tallies and optional per-subsystem wall time and
        #: slow-op counts (populated when profiling or tracing).
        self.fast_ops = 0
        self.slow_ops = 0
        self._profile = False
        self.subsystem_s: Dict[str, float] = {}
        self.subsystem_n: Dict[str, int] = {}

    def set_clock(self, clock: ClockDomain) -> None:
        """DVFS: subsequent cycle costs use the new period."""
        self.clock = clock
        self._hit_ps = clock.cycles_to_ps(self.controller.l1_hit_cycles)
        self._burst_ps.clear()

    def bind_stream(self, ops: List[tuple]) -> None:
        """Attach a compiled stream for fast-path execution."""
        self._ops_list = ops
        self._ops_index = 0
        self._ops = iter(ops)

    def prepare_fast_path(
        self,
        profile: bool = False,
        private_lines: FrozenSet[int] = frozenset(),
    ) -> None:
        """Decide which op classes may bypass the controller this window.

        An L1 hit may short-circuit only when the controller would charge
        it zero stall: the hit latency the controller bills (in the
        requester's clock domain) must equal the one the core folds into
        its base CPI (its own clock).  These are the same domain in every
        supported configuration, but the check keeps the fast path safe
        under exotic hand-built machines.  Loads additionally require the
        prefetcher off — a read hit on a prefetched line triggers stream
        chasing inside the controller.

        ``private_lines`` is this thread's provably-private line set
        (:func:`repro.sim.ops.classify_private_lines`): L1 hits on those
        lines resolve inline even past the scheduler horizon, since no
        peer transaction can ever touch them.
        """
        controller = self.controller
        same_domain = (
            controller.core_clocks[self.core_id].period_ps == self.clock.period_ps
        )
        self._fast_stores = same_domain
        self._fast_loads = same_domain and not controller.prefetch_next_line
        self._burst_ps.clear()
        self._profile = profile
        self.fast_ops = 0
        self.slow_ops = 0
        self.subsystem_s = {}
        self.subsystem_n = {}
        # Window-invariant state for step_fast, packed so each scheduler
        # pop pays one attribute access + tuple unpack instead of a
        # dozen chained lookups.  Only identity-stable objects belong
        # here: the L1's flat tag/state arrays and the burst-cost dict
        # are mutated in place, never replaced, while counters live on
        # objects that _reset_counters swaps out (so step_fast reads
        # those via self).
        l1 = controller.l1s[self.core_id]
        self._fast_frame = (
            self._ops_list,
            len(self._ops_list),
            self.core_id,
            l1._tags,
            l1._states,
            l1._assoc,
            private_lines,
            self._fast_loads,
            self._fast_stores,
            self._burst_ps,
            profile,
        )

    # -- op execution -------------------------------------------------------

    def _run_burst(self, n_instructions: int) -> None:
        timing = self.timing
        cycles = n_instructions * timing.base_cpi
        # Statistical I-cache misses each stall for an L2 hit.
        cycles += (
            n_instructions
            * timing.icache_miss_rate
            * self.controller.l2_hit_cycles
        )
        duration = self.clock.cycles_to_ps(cycles)
        self.time_ps += duration
        self.stats.busy_ps += duration
        self.stats.instructions += n_instructions
        self.stats.icache_accesses += n_instructions

    def _run_memory_op(self, byte_address: int, is_write: bool) -> None:
        now = self.time_ps
        if is_write:
            done = self.controller.write(self.core_id, byte_address, now)
            self.stats.stores += 1
        else:
            done = self.controller.read(self.core_id, byte_address, now)
            self.stats.loads += 1
        self.stats.instructions += 1
        self.stats.icache_accesses += 1
        stall = done - now
        hit_ps = self._hit_ps
        if stall <= hit_ps:
            # L1 hits are fully pipelined on the EV6; their cost is part
            # of the application's base CPI.
            stall = 0
        else:
            # The OoO window overlaps part of the miss latency.
            stall = int((stall - hit_ps) / self.timing.memory_parallelism)
        self.time_ps += stall
        self.stats.stall_mem_ps += stall

    def _run_critical(self, lock_id: int, n_instructions: int, address: int) -> None:
        grant = self.locks.acquire(lock_id, self.time_ps)
        waited = grant - self.time_ps
        self.time_ps = grant
        self.stats.sync_wait_ps += waited
        overhead = self.clock.cycles_to_ps(self.timing.lock_overhead_cycles)
        self.time_ps += overhead
        self.stats.busy_ps += overhead
        if n_instructions:
            self._run_burst(n_instructions)
        # The protected data: a read-modify-write that ping-pongs between
        # lock holders, generating the coherence traffic real critical
        # sections do.
        self._run_memory_op(address, is_write=True)
        self.locks.release(lock_id, self.time_ps)
        self.stats.critical_sections += 1

    def step(self) -> int:
        """Execute one operation; returns RUNNING, AT_BARRIER, or DONE.

        The reference interpreter.  Fused compute bursts (compiled
        streams) are executed segment by segment, so the reference path
        stays cycle-exact on compiled input too.
        """
        op = next(self._ops, None)
        if op is None:
            self.stats.end_time_ps = self.time_ps
            return DONE
        kind = op[0]
        if kind == OP_COMPUTE:
            if len(op) > 2:
                for segment in op[2]:
                    self._run_burst(segment)
            else:
                self._run_burst(op[1])
            return RUNNING
        if kind == OP_LOAD:
            self._run_memory_op(op[1], is_write=False)
            return RUNNING
        if kind == OP_STORE:
            self._run_memory_op(op[1], is_write=True)
            return RUNNING
        if kind == OP_BARRIER:
            self.pending_barrier = op[1]
            return AT_BARRIER
        if kind == OP_CRITICAL:
            self._run_critical(op[1], op[2], op[3])
            return RUNNING
        raise ConfigurationError(f"unknown op kind {kind}")

    # -- fast path -----------------------------------------------------------

    def _burst_cost(self, op: tuple) -> Tuple[int, int, int]:
        """(duration_ps, instructions, source_ops) of one compute op.

        Replicates :meth:`_run_burst`'s arithmetic per segment so a fused
        burst costs exactly the sum of interpreting its segments — for
        any clock period and core timing; cached per distinct burst
        shape (the generator reuses a handful).
        """
        timing = self.timing
        l2_hit_cycles = self.controller.l2_hit_cycles
        cycles_to_ps = self.clock.cycles_to_ps
        segments = op[2] if len(op) > 2 else (op[1],)
        duration = 0
        for n_instructions in segments:
            cycles = n_instructions * timing.base_cpi
            cycles += n_instructions * timing.icache_miss_rate * l2_hit_cycles
            duration += cycles_to_ps(cycles)
        return duration, sum(segments), len(segments)

    # repro: hot
    def step_fast(self, next_time, next_id: int) -> int:
        """Execute ops from the compiled stream until a scheduling point.

        ``(next_time, next_id)`` is the scheduler heap's top key after
        this core was popped — the virtual time at which another core
        acts next.  The *safe-horizon* rule: any op touching state
        another core can observe or mutate (shared-visible loads/stores
        — even L1 hits, since a peer's miss can invalidate or downgrade
        our lines — and critical sections) executes only while this
        core's ``(time_ps, core_id)`` key is still below that heap key,
        i.e. exactly while the reference scheduler would keep popping
        this core anyway.  L1 hits on *provably private* lines
        (classified at compile time: touched by exactly one thread
        across the whole workload) are exempt — no peer transaction can
        ever observe or mutate them, their inline effects (own-set LRU
        reorder, silent E->M, commutative counter increments) commute
        with every peer action, so they resolve inline regardless of
        heap position and only the remaining shared-visible ops yield
        to the horizon.  Within the horizon, shared-visible L1 hits in
        a suitable MESI state also resolve inline (flat-array probe,
        move-to-front on commit, batched stat deltas) and anything else
        runs through the reference machinery; past it, the core
        re-enters the heap and waits its turn.  Compute bursts touch
        only private state and run unconditionally; barrier
        registration is order-insensitive (the release is a max over
        frozen arrival times).  This makes the fast path's interleaving
        of *shared* state mutations identical to the reference
        interpreter's, hence bitwise-identical counters.  Returns
        RUNNING, AT_BARRIER, or DONE.
        """
        (
            ops,
            n_ops,
            core_id,
            tags,
            states,
            assoc,
            private,
            fast_loads,
            fast_stores,
            burst_ps,
            profile,
        ) = self._fast_frame
        i = self._ops_index
        t = self.time_ps
        # Batched stat deltas.  Inline-committed loads/stores are each
        # one instruction, one L1 hit, and one fast op, so only the
        # load/store tallies are kept per-commit; the rest is derived at
        # sync points.  Compute bursts accumulate separately.
        burst_instr_d = 0
        burst_fast_d = 0
        busy_d = 0
        loads_d = 0
        stores_d = 0
        # Whether this core still leads the reference pop order.  The
        # heap-key comparison is loop-invariant while t stands still,
        # and inline commits never move t — only compute bursts and
        # slow ops do — so one boolean carries the horizon state
        # between them.  (t == next_time with core_id == next_id is
        # impossible: each core has at most one heap entry, and this
        # one was just popped.)
        lead = t < next_time or (t == next_time and core_id < next_id)
        while i < n_ops:
            op = ops[i]
            kind = op[0]
            if kind == OP_COMPUTE:
                # op[-1] is the burst key: the instruction count of a
                # plain 2-tuple, the segment tuple of a fused op (an int
                # never equals a tuple, so the keyspaces cannot collide).
                cost = burst_ps.get(op[-1])
                if cost is None:
                    cost = self._burst_cost(op)
                    burst_ps[op[-1]] = cost
                t += cost[0]
                busy_d += cost[0]
                burst_instr_d += cost[1]
                burst_fast_d += cost[2]
                i += 1
                lead = t < next_time or (t == next_time and core_id < next_id)
                continue
            if kind == OP_LOAD:
                if fast_loads:
                    # Mutation-free probe first: a broken-out op is later
                    # replayed through lookup(), which does the LRU move.
                    # Line and flat set base are geometry-resolved at
                    # compile time (resolve_address_streams).
                    line = op[2]
                    base = op[3]
                    w = base
                    end = base + assoc
                    while w < end and tags[w] != line:
                        w += 1
                    if w < end and (lead or line in private):
                        if w != base:
                            state = states[w]
                            while w > base:
                                tags[w] = tags[w - 1]
                                states[w] = states[w - 1]
                                w -= 1
                            tags[base] = line
                            states[base] = state
                        loads_d += 1
                        i += 1
                        continue
                # Shared-visible (or missing) load: only while this core
                # still leads the reference pop order.
                if not lead:
                    break
                is_write = False
            elif kind == OP_STORE:
                if fast_stores:
                    line = op[2]
                    base = op[3]
                    w = base
                    end = base + assoc
                    while w < end and tags[w] != line:
                        w += 1
                    if w < end:
                        state = states[w]
                        if (state == MODIFIED or state == EXCLUSIVE) and (
                            lead or line in private
                        ):
                            while w > base:
                                tags[w] = tags[w - 1]
                                states[w] = states[w - 1]
                                w -= 1
                            tags[base] = line
                            states[base] = MODIFIED
                            stores_d += 1
                            i += 1
                            continue
                if not lead:
                    break
                is_write = True
            elif kind == OP_BARRIER:
                # Order-insensitive registration: may complete the batch.
                i += 1
                self._ops_index = i
                mem_d = loads_d + stores_d
                if mem_d or burst_fast_d:
                    self._sync_deltas(
                        t,
                        burst_instr_d + mem_d,
                        busy_d,
                        loads_d,
                        stores_d,
                        mem_d,
                        burst_fast_d + mem_d,
                    )
                self.pending_barrier = op[1]
                return AT_BARRIER
            elif kind == OP_CRITICAL:
                # Lock-table traffic is always shared-visible.
                if not lead:
                    break
            else:
                raise ConfigurationError(f"unknown op kind {kind}")
            # A slow op (miss, upgrade, critical section) inside the
            # horizon: the reference machinery runs it here, at exactly
            # the scheduler position the reference interpreter uses.
            # Zero deltas imply t == self.time_ps (only compute bursts
            # move t between syncs), so skipping the sync is safe.
            mem_d = loads_d + stores_d
            if mem_d or burst_fast_d:
                self._sync_deltas(
                    t,
                    burst_instr_d + mem_d,
                    busy_d,
                    loads_d,
                    stores_d,
                    mem_d,
                    burst_fast_d + mem_d,
                )
                burst_instr_d = busy_d = loads_d = stores_d = burst_fast_d = 0
            if profile:
                # repro: allow[DET-WALLCLOCK] host-side profiling timer; never feeds simulated state
                started = time.perf_counter()
            if kind == OP_CRITICAL:
                self._run_critical(op[1], op[2], op[3])
                name = "critical"
            else:
                self._run_memory_op(op[1], is_write)
                name = "memory"
            if profile:
                # repro: allow[DET-WALLCLOCK] host-side profiling timer; never feeds simulated state
                elapsed = time.perf_counter() - started
                self.subsystem_s[name] = self.subsystem_s.get(name, 0.0) + elapsed
                self.subsystem_n[name] = self.subsystem_n.get(name, 0) + 1
            self.slow_ops += 1
            i += 1
            t = self.time_ps
            lead = t < next_time or (t == next_time and core_id < next_id)

        self._ops_index = i
        mem_d = loads_d + stores_d
        if mem_d or burst_fast_d:
            self._sync_deltas(
                t,
                burst_instr_d + mem_d,
                busy_d,
                loads_d,
                stores_d,
                mem_d,
                burst_fast_d + mem_d,
            )
        if i >= n_ops:
            self.stats.end_time_ps = self.time_ps
            return DONE
        return RUNNING

    def _sync_deltas(
        self,
        t: int,
        instr_d: int,
        busy_d: int,
        loads_d: int,
        stores_d: int,
        hits_d: int,
        fast_d: int,
    ) -> None:
        """Write batched fast-path deltas back to the shared counters."""
        self.time_ps = t
        if fast_d:
            stats = self.stats
            stats.instructions += instr_d
            stats.icache_accesses += instr_d
            stats.busy_ps += busy_d
            stats.loads += loads_d
            stats.stores += stores_d
            if hits_d:
                self.controller.stats.l1_hits += hits_d
                self.controller.l1s[self.core_id].hits += hits_d
            self.fast_ops += fast_d
