"""Tests for the self-verification checklist."""


from repro.cli import main
from repro.validation import run_verification


class TestRunVerification:
    def test_analytical_checks_pass(self):
        results = run_verification(include_experimental=False)
        assert len(results) == 5
        assert all(r.passed for r in results), [
            (r.name, r.detail) for r in results if not r.passed
        ]

    def test_results_carry_details_and_timing(self):
        results = run_verification(include_experimental=False)
        for r in results:
            assert r.detail
            assert r.seconds >= 0.0

    def test_experimental_group_appended(self):
        results = run_verification(include_experimental=True, scale=0.05)
        names = [r.name for r in results]
        assert any("Figure 3" in n for n in names)
        assert any("Figure 4" in n for n in names)
        assert len(results) == 8

    def test_failure_reported_not_raised(self, monkeypatch):
        import repro.validation as validation

        def broken():
            assert False, "synthetic failure"

        result = validation._check("broken", broken)
        assert not result.passed
        assert "synthetic failure" in result.detail


class TestCLIVerify:
    def test_analytical_only_exit_zero(self, capsys):
        assert main(["verify", "--analytical-only"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "checks passed" in out
        assert "FAIL" not in out.replace("FAILED:", "")
