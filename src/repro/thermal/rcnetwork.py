"""The compact RC thermal network behind the HotSpot stand-in.

HotSpot [38] models a chip as a network of thermal resistances (and, for
transients, capacitances): one node per floorplan block, lateral
resistances between adjacent blocks through the silicon, and a vertical
path from every block through the heat spreader / heat sink to ambient.
Steady state is then a sparse linear system ``G T = P + G_amb T_amb``.

We build the same network with :mod:`networkx` for bookkeeping and solve
it with dense :mod:`numpy` linear algebra (floorplans here have at most a
few dozen blocks).  The transient solver uses implicit (backward) Euler,
which is unconditionally stable, so large DVFS-interval steps are safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class ThermalMaterial:
    """Bulk material/package constants of the thermal network.

    Parameters
    ----------
    silicon_conductivity:
        Thermal conductivity of silicon, W/(m K).  ~100 at hot-die
        temperatures.
    die_thickness:
        Die thickness, metres.
    vertical_resistance_area:
        Specific vertical (die-to-ambient through the package) thermal
        resistance in K m^2/W; the per-block vertical resistance is this
        divided by block area.  This lumps spreader, sink, and convection.
    volumetric_heat_capacity:
        Silicon volumetric heat capacity, J/(m^3 K), for transients.
    """

    silicon_conductivity: float = 100.0
    die_thickness: float = 0.5e-3
    vertical_resistance_area: float = 6.0e-5
    volumetric_heat_capacity: float = 1.75e6

    def __post_init__(self) -> None:
        if min(
            self.silicon_conductivity,
            self.die_thickness,
            self.vertical_resistance_area,
            self.volumetric_heat_capacity,
        ) <= 0:
            raise ConfigurationError("thermal material constants must be positive")


class ThermalRCNetwork:
    """RC thermal network over a floorplan with steady/transient solvers.

    The vertical resistances can be scaled uniformly via
    ``vertical_scale`` — the calibration hook
    :meth:`repro.thermal.hotspot.HotSpotModel.calibrate` uses it to pin a
    known power map at a known temperature, the same renormalisation
    spirit as the paper's Section 3.3.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        material: ThermalMaterial | None = None,
        vertical_scale: float = 1.0,
    ) -> None:
        if vertical_scale <= 0:
            raise ConfigurationError("vertical_scale must be positive")
        self.floorplan = floorplan
        self.material = material or ThermalMaterial()
        self.vertical_scale = vertical_scale
        self._names = floorplan.names
        self._index = {name: i for i, name in enumerate(self._names)}
        self.graph = self._build_graph()
        self._conductance = self._build_conductance_matrix()
        self._capacitance = self._build_capacitance_vector()

    def _build_graph(self) -> nx.Graph:
        """Lateral-conductance graph: nodes are blocks, edges adjacency."""
        g = nx.Graph()
        mat = self.material
        for block in self.floorplan.blocks:
            g.add_node(block.name, area=block.area)
        for (a, b), edge_length in self.floorplan.adjacency().items():
            block_a = self.floorplan.block(a)
            block_b = self.floorplan.block(b)
            ca, cb = block_a.center(), block_b.center()
            distance = math.hypot(ca[0] - cb[0], ca[1] - cb[1])
            cross_section = edge_length * mat.die_thickness
            conductance = mat.silicon_conductivity * cross_section / distance
            g.add_edge(a, b, conductance=conductance)
        return g

    def _vertical_conductance(self, name: str) -> float:
        area = self.floorplan.block(name).area
        resistance = self.vertical_scale * self.material.vertical_resistance_area / area
        return 1.0 / resistance

    def _build_conductance_matrix(self) -> np.ndarray:
        n = len(self._names)
        g_matrix = np.zeros((n, n))
        for a, b, data in self.graph.edges(data=True):
            i, j = self._index[a], self._index[b]
            g = data["conductance"]
            g_matrix[i, i] += g
            g_matrix[j, j] += g
            g_matrix[i, j] -= g
            g_matrix[j, i] -= g
        for name in self._names:
            i = self._index[name]
            g_matrix[i, i] += self._vertical_conductance(name)
        return g_matrix

    def _build_capacitance_vector(self) -> np.ndarray:
        mat = self.material
        return np.array(
            [
                mat.volumetric_heat_capacity * b.area * mat.die_thickness
                for b in self.floorplan.blocks
            ]
        )

    def _power_vector(self, power_map: Mapping[str, float]) -> np.ndarray:
        unknown = set(power_map) - set(self._names)
        if unknown:
            raise ConfigurationError(f"power map names not in floorplan: {sorted(unknown)}")
        vec = np.zeros(len(self._names))
        for name, watts in power_map.items():
            if watts < 0:
                raise ConfigurationError(f"negative power for block {name}")
            vec[self._index[name]] = watts
        return vec

    def steady_state(
        self, power_map: Mapping[str, float], ambient_k: float
    ) -> Dict[str, float]:
        """Steady-state block temperatures (kelvin) for a power map.

        Solves ``G T = P + G_vert T_amb`` where ``G`` includes lateral and
        vertical conductances.
        """
        p = self._power_vector(power_map)
        rhs = p.copy()
        for name in self._names:
            rhs[self._index[name]] += self._vertical_conductance(name) * ambient_k
        temperatures = np.linalg.solve(self._conductance, rhs)
        return dict(zip(self._names, temperatures.tolist()))

    def transient(
        self,
        power_map: Mapping[str, float],
        ambient_k: float,
        initial_k: Mapping[str, float] | float,
        duration_s: float,
        dt_s: float = 1e-3,
    ) -> Dict[str, float]:
        """Implicit-Euler transient: temperatures after ``duration_s``.

        ``initial_k`` may be a scalar (uniform start) or a per-block map.
        The step ``(C/dt + G) T_next = C/dt T + P + G_vert T_amb`` is
        unconditionally stable, so coarse steps still converge to the
        steady state.
        """
        if duration_s < 0 or dt_s <= 0:
            raise ConfigurationError("need duration >= 0 and dt > 0")
        n = len(self._names)
        if isinstance(initial_k, Mapping):
            temperature = np.array([initial_k[name] for name in self._names])
        else:
            temperature = np.full(n, float(initial_k))
        p = self._power_vector(power_map)
        rhs_const = p.copy()
        for name in self._names:
            rhs_const[self._index[name]] += self._vertical_conductance(name) * ambient_k
        c_over_dt = np.diag(self._capacitance / dt_s)
        lhs = c_over_dt + self._conductance
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            rhs = c_over_dt @ temperature + rhs_const
            temperature = np.linalg.solve(lhs, rhs)
        return dict(zip(self._names, temperature.tolist()))

    def with_vertical_scale(self, scale: float) -> "ThermalRCNetwork":
        """A copy of this network with a different vertical-resistance scale."""
        return ThermalRCNetwork(self.floorplan, self.material, vertical_scale=scale)
