"""Process-technology models: node parameters, alpha-power law, leakage.

This subpackage provides the device-level substrate of the paper's
analytical model (Section 2.1):

* :class:`~repro.tech.technology.TechnologyNode` — per-node constants
  (nominal Vdd, threshold voltage, nominal frequency, static/dynamic power
  split) for the two process technologies the paper studies, 130 nm and
  65 nm, plus the alpha-power-law frequency/voltage relation (Eq. 1).
* :class:`~repro.tech.technology.VFTable` — a discrete
  voltage/frequency operating-point table in the style of the Intel
  Pentium M datasheet the paper's experimental study uses [18].
* :mod:`~repro.tech.leakage` — a physical (BSIM-like) leakage-current
  model and the curve-fitted ``H(V, T)`` multiplier of Eq. 3, together with
  the fitting procedure that stands in for the paper's HSpice validation.
"""

from repro.tech.technology import (
    TechnologyNode,
    VFTable,
    NODE_130NM,
    NODE_65NM,
    NODE_32NM_PROJECTED,
    technology_by_name,
)
from repro.tech.leakage import (
    LeakageParameters,
    PhysicalLeakageModel,
    LeakageFit,
    fit_leakage_curve,
    default_leakage_multiplier,
)

__all__ = [
    "TechnologyNode",
    "VFTable",
    "NODE_130NM",
    "NODE_65NM",
    "NODE_32NM_PROJECTED",
    "technology_by_name",
    "LeakageParameters",
    "PhysicalLeakageModel",
    "LeakageFit",
    "fit_leakage_curve",
    "default_leakage_multiplier",
]
