"""Parallel-efficiency curves ``eps_n(N)``.

The paper characterises an application by its *nominal parallel
efficiency* (Eq. 6): the efficiency measured with every core at nominal
frequency, which folds in both parallel overheads (communication,
load imbalance — ``eps_n < 1``) and parallel benefits (aggregate cache
capacity — superlinear ``eps_n > 1``).

The analytical scenarios take any callable ``N -> eps_n(N)``; this module
provides the standard shapes:

* :class:`ConstantEfficiency` — the ``eps_n = 1`` idealisation of Fig. 2;
* :class:`AmdahlEfficiency` — a serial-fraction limit;
* :class:`CommunicationOverheadEfficiency` — efficiency eroded by a
  communication term that grows with N (the typical SPLASH-2 shape);
* :class:`MeasuredEfficiency` — table-driven, e.g. from simulator
  profiling runs (Section 4.1) or from the paper's sample application
  marks in Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class EfficiencyCurve(Protocol):
    """Anything mapping a core count to a nominal parallel efficiency."""

    def __call__(self, n: int) -> float:
        """Nominal parallel efficiency at ``n`` cores."""


def _require_positive_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"core count must be >= 1, got {n}")


@dataclass(frozen=True)
class ConstantEfficiency:
    """``eps_n(N) = value`` for every N; ``value = 1`` is perfect scaling."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError("efficiency must be positive")

    def __call__(self, n: int) -> float:
        _require_positive_n(n)
        return 1.0 if n == 1 else self.value


@dataclass(frozen=True)
class AmdahlEfficiency:
    """Efficiency implied by Amdahl's law with a serial fraction ``s``.

    ``speedup(N) = 1 / (s + (1 - s)/N)`` hence
    ``eps_n(N) = speedup(N) / N``.
    """

    serial_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ConfigurationError("serial fraction must be in [0, 1]")

    def __call__(self, n: int) -> float:
        _require_positive_n(n)
        speedup = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / n)
        return speedup / n


@dataclass(frozen=True)
class CommunicationOverheadEfficiency:
    """Efficiency eroded by communication that grows with core count.

    ``eps_n(N) = 1 / (1 + c * (N - 1)^k)``: ``c`` is the per-partner
    overhead relative to useful work, ``k`` how super/sub-linearly the
    communication volume grows.  ``k = 1`` models all-to-one patterns,
    ``k < 1`` nearest-neighbour ones.
    """

    overhead: float
    growth: float = 1.0

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise ConfigurationError("overhead must be non-negative")
        if self.growth <= 0:
            raise ConfigurationError("growth exponent must be positive")

    def __call__(self, n: int) -> float:
        _require_positive_n(n)
        if n == 1:
            return 1.0
        return 1.0 / (1.0 + self.overhead * (n - 1) ** self.growth)


class MeasuredEfficiency:
    """Table-driven efficiency with geometric interpolation between points.

    ``table`` maps core counts to measured nominal efficiencies; N = 1 is
    implicitly 1.0.  Lookups at intermediate N interpolate log-linearly in
    N (efficiency curves are roughly straight on a log-N axis); lookups
    beyond the last point extrapolate with the last segment's slope,
    clamped to stay positive.
    """

    def __init__(self, table: Mapping[int, float]) -> None:
        cleaned: Dict[int, float] = {1: 1.0}
        for n, eps in table.items():
            if n < 1:
                raise ConfigurationError(f"core count must be >= 1, got {n}")
            if eps <= 0:
                raise ConfigurationError(f"efficiency must be positive, got {eps}")
            cleaned[int(n)] = float(eps)
        if len(cleaned) < 2:
            raise ConfigurationError("need at least one N > 1 entry")
        self._ns = sorted(cleaned)
        self._eps = [cleaned[n] for n in self._ns]

    def __call__(self, n: int) -> float:
        _require_positive_n(n)
        ns, eps = self._ns, self._eps
        if n in ns:
            return eps[ns.index(n)]
        if n < ns[0]:
            return eps[0]
        # Find the bracketing or extrapolating segment.
        if n > ns[-1]:
            lo, hi = len(ns) - 2, len(ns) - 1
        else:
            hi = next(i for i, candidate in enumerate(ns) if candidate > n)
            lo = hi - 1
        log_n_lo, log_n_hi = math.log(ns[lo]), math.log(ns[hi])
        log_e_lo, log_e_hi = math.log(eps[lo]), math.log(eps[hi])
        t = (math.log(n) - log_n_lo) / (log_n_hi - log_n_lo)
        return math.exp(log_e_lo + t * (log_e_hi - log_e_lo))

    @property
    def table(self) -> Dict[int, float]:
        """The measured points, including the implicit N = 1 entry."""
        return dict(zip(self._ns, self._eps))


#: The "imaginary sample application" whose operating points are marked in
#: Figure 1: eps_n = 0.9 / 0.8 / 0.65 / 0.5 at N = 2 / 4 / 8 / 16.
SAMPLE_APPLICATION = MeasuredEfficiency({2: 0.9, 4: 0.8, 8: 0.65, 16: 0.5})
