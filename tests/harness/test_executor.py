"""Tests for the parallel sweep executor and its memoizing cache."""

import json
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, InfeasibleOperatingPoint, ReproError
from repro.harness.executor import (
    ResultCache,
    SweepExecutor,
    SweepFailure,
    config_key,
    decode_value,
    encode_value,
)
from repro.harness.profiling import SimPointRow
from repro.harness.schema import SCHEMA_VERSION


# ---------------------------------------------------------------------------
# Module-level evaluators (picklable, so they work under jobs > 1).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Probe:
    """Tiny dataclass result, JSON-flat, so it exercises the cache codec.

    Lives outside ``repro.*``; cacheable values decode through the
    dataclass tag only for ``repro.`` types, so cache tests use a repro
    row type instead.
    """

    point: int
    square: int


def square_point(point):
    return Probe(point=point, square=point * point)


def row_point(point):
    """Evaluator returning a real (cacheable) harness row type."""
    return SimPointRow(
        app=f"app-{point}",
        n=point,
        frequency_hz=3.2e9,
        voltage=1.1,
        execution_time_ps=1000 * (point + 1),
        total_power_w=float(point),
        core_power_density_w_m2=1.0,
        average_temperature_c=45.0,
        average_cpi=1.0,
        l1_miss_rate=0.01,
        memory_stall_fraction=0.1,
        bus_utilisation=0.2,
    )


def flaky_point(point):
    if point % 2:
        raise InfeasibleOperatingPoint(f"point {point} infeasible")
    return point * 10


def buggy_point(point):
    raise ValueError("a genuine bug, not infeasible physics")


def unencodable_point(point):
    return object()


def marking_row_point(args):
    """Like row_point but leaves a marker file proving it really ran."""
    point, mark_dir = args
    Path(mark_dir, f"ran-{point}").touch()
    return row_point(point)


class CountingEvaluator:
    """Spy evaluator for jobs=1 runs: records every point it computes."""

    def __init__(self):
        self.calls = []

    def __call__(self, point):
        self.calls.append(point)
        return row_point(point)


def key_for(point, salt=0):
    return {"kind": "test-point", "point": point, "salt": salt}


# ---------------------------------------------------------------------------
# Value codec.
# ---------------------------------------------------------------------------


class TestCodec:
    def test_round_trips_scalars_and_containers(self):
        value = {
            "a": [1, 2.5, None, True, "s"],
            "b": (1, (2, 3)),
            "c": {"nested": (4,)},
        }
        assert decode_value(encode_value(value)) == value

    def test_round_trips_repro_dataclasses(self):
        row = row_point(3)
        restored = decode_value(encode_value(row))
        assert restored == row
        assert type(restored) is SimPointRow

    def test_tuples_stay_tuples(self):
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(ConfigurationError):
            encode_value({1: "x"})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(ConfigurationError):
            encode_value(object())

    def test_decode_refuses_foreign_types(self):
        evil = {
            "__repro__": "dataclass",
            "type": "os.path.Path",
            "fields": {},
        }
        with pytest.raises(ConfigurationError, match="refusing"):
            decode_value(evil)

    def test_decode_rejects_field_mismatch(self):
        encoded = encode_value(row_point(1))
        encoded["fields"]["bogus"] = 1
        with pytest.raises(ConfigurationError):
            decode_value(encoded)


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(key_for(3)) == config_key(key_for(3))

    def test_dict_order_is_irrelevant(self):
        assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})

    def test_changes_with_any_field(self):
        assert config_key(key_for(3)) != config_key(key_for(4))
        assert config_key(key_for(3)) != config_key(key_for(3, salt=1))

    def test_changes_with_schema_version(self):
        assert config_key(key_for(3)) != config_key(
            key_for(3), schema_version=SCHEMA_VERSION + 1
        )

    def test_distinguishes_dataclass_types(self):
        assert config_key(Probe(1, 1)) != config_key({"point": 1, "square": 1})


# ---------------------------------------------------------------------------
# Executor semantics (no cache).
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)
        with pytest.raises(ConfigurationError):
            SweepExecutor(chunksize=0)

    def test_serial_results_in_input_order(self):
        outcomes = SweepExecutor().map(square_point, [5, 1, 3])
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.value for o in outcomes] == [Probe(5, 25), Probe(1, 1), Probe(3, 9)]

    def test_parallel_matches_serial_bitwise(self):
        points = list(range(13))
        serial = SweepExecutor(jobs=1).map(square_point, points)
        parallel = SweepExecutor(jobs=4).map(square_point, points)
        assert [o.value for o in parallel] == [o.value for o in serial]
        assert [o.index for o in parallel] == [o.index for o in serial]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_library_errors_become_typed_failures(self, jobs):
        points = list(range(6))
        outcomes = SweepExecutor(jobs=jobs).map(flaky_point, points)
        assert len(outcomes) == 6
        for point, outcome in zip(points, outcomes):
            if point % 2:
                assert not outcome.ok
                assert outcome.failure.error_type == "InfeasibleOperatingPoint"
                with pytest.raises(InfeasibleOperatingPoint):
                    outcome.unwrap()
            else:
                assert outcome.ok
                assert outcome.value == point * 10

    def test_failure_count_in_stats(self):
        executor = SweepExecutor()
        executor.map(flaky_point, list(range(6)))
        assert executor.stats.evaluated == 6
        assert executor.stats.failures == 3

    def test_non_library_errors_propagate(self):
        with pytest.raises(ValueError):
            SweepExecutor().map(buggy_point, [1])

    def test_map_values_raises_on_failure(self):
        with pytest.raises(InfeasibleOperatingPoint):
            SweepExecutor().map_values(flaky_point, [0, 1])

    def test_key_config_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor().map(square_point, [1, 2], key_configs=[key_for(1)])

    def test_failure_round_trips_to_exception(self):
        failure = SweepFailure(error_type="InfeasibleOperatingPoint", message="m")
        assert isinstance(failure.to_exception(), InfeasibleOperatingPoint)
        unknown = SweepFailure(error_type="NoSuchError", message="m")
        assert isinstance(unknown.to_exception(), ReproError)


# ---------------------------------------------------------------------------
# Cache correctness.
# ---------------------------------------------------------------------------


def run_cached(root, points, salts=None, schema_version=None):
    """One executor invocation with a fresh spy; returns (rows, spy, executor)."""
    salts = salts if salts is not None else [0] * len(points)
    cache = ResultCache(root, schema_version=schema_version)
    executor = SweepExecutor(cache=cache)
    spy = CountingEvaluator()
    rows = executor.map_values(
        spy,
        points,
        key_configs=[key_for(p, salt) for p, salt in zip(points, salts)],
    )
    return rows, spy, executor


class TestCache:
    def test_cold_then_warm_identical_with_zero_recomputation(self, tmp_path):
        points = [1, 2, 3, 4]
        cold, spy_cold, ex_cold = run_cached(tmp_path, points)
        assert spy_cold.calls == points
        assert ex_cold.stats.evaluated == 4 and ex_cold.stats.cache_hits == 0

        warm, spy_warm, ex_warm = run_cached(tmp_path, points)
        assert spy_warm.calls == []
        assert ex_warm.stats.evaluated == 0 and ex_warm.stats.cache_hits == 4
        assert warm == cold

    def test_warm_outcomes_are_marked_cached(self, tmp_path):
        points = [1, 2]
        run_cached(tmp_path, points)
        cache = ResultCache(tmp_path)
        outcomes = SweepExecutor(cache=cache).map(
            CountingEvaluator(), points, key_configs=[key_for(p) for p in points]
        )
        assert all(o.cached for o in outcomes)
        assert cache.stats.hits == 2

    def test_mutating_one_config_invalidates_exactly_that_entry(self, tmp_path):
        points = [1, 2, 3]
        run_cached(tmp_path, points)
        # Change only point 2's configuration ("salt" stands in for any
        # input the row depends on).
        _, spy, executor = run_cached(tmp_path, points, salts=[0, 7, 0])
        assert spy.calls == [2]
        assert executor.stats.evaluated == 1 and executor.stats.cache_hits == 2

    def test_schema_bump_invalidates_everything(self, tmp_path):
        points = [1, 2, 3]
        run_cached(tmp_path, points)
        _, spy, executor = run_cached(
            tmp_path, points, schema_version=SCHEMA_VERSION + 1
        )
        assert spy.calls == points
        assert executor.stats.cache_hits == 0

    def test_corrupted_entry_is_quarantined_and_recomputed(self, tmp_path):
        points = [1, 2, 3]
        cold, _, _ = run_cached(tmp_path, points)
        victim = ResultCache(tmp_path).path_for(config_key(key_for(2)))
        victim.write_text("{ truncated garbage", encoding="utf-8")

        warm, spy, executor = run_cached(tmp_path, points)
        assert warm == cold
        assert spy.calls == [2]
        assert executor.cache.stats.quarantined == 1
        quarantined = list(tmp_path.glob("*.quarantined"))
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith(victim.name)

    def test_valid_json_with_wrong_key_is_quarantined(self, tmp_path):
        points = [1]
        run_cached(tmp_path, points)
        victim = ResultCache(tmp_path).path_for(config_key(key_for(1)))
        document = json.loads(victim.read_text())
        document["key"] = "0" * 64  # plausible but wrong
        victim.write_text(json.dumps(document), encoding="utf-8")
        _, spy, executor = run_cached(tmp_path, points)
        assert spy.calls == [1]
        assert executor.cache.stats.quarantined == 1

    def test_typed_failures_are_cached_too(self, tmp_path):
        points = [0, 1, 2, 3]
        cache = ResultCache(tmp_path)
        cold = SweepExecutor(cache=cache).map(
            flaky_point, points, key_configs=[key_for(p) for p in points]
        )
        warm_executor = SweepExecutor(cache=ResultCache(tmp_path))
        warm = warm_executor.map(
            buggy_point,  # would explode if any point were re-evaluated
            points,
            key_configs=[key_for(p) for p in points],
        )
        assert warm_executor.stats.evaluated == 0
        assert [(o.ok, o.value, o.failure) for o in warm] == [
            (o.ok, o.value, o.failure) for o in cold
        ]

    def test_unencodable_values_are_returned_but_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        outcomes = executor.map(
            unencodable_point, [1], key_configs=[key_for(1)]
        )
        assert outcomes[0].ok
        assert executor.stats.uncacheable == 1
        assert len(cache) == 0

    def test_unusable_cache_root_is_a_configuration_error(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("")
        with pytest.raises(ConfigurationError, match="occupied"):
            ResultCache(not_a_dir)

    def test_no_key_configs_means_no_caching(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache).map(row_point, [1, 2])
        assert len(cache) == 0

    def test_parallel_warm_run_spawns_no_evaluations(self, tmp_path):
        """End to end: a cached jobs=4 re-run provably runs nothing.

        Worker-side marker files prove no child process re-evaluated a
        point, independent of the parent-side stats counters.
        """
        cache_dir = tmp_path / "cache"
        marks = tmp_path / "marks"
        marks.mkdir()
        points = [(p, str(marks)) for p in range(8)]
        keys = [key_for(p) for p in range(8)]

        cold_ex = SweepExecutor(jobs=4, cache=ResultCache(cache_dir))
        cold = cold_ex.map_values(marking_row_point, points, key_configs=keys)
        assert len(list(marks.iterdir())) == 8

        for mark in marks.iterdir():
            mark.unlink()
        warm_ex = SweepExecutor(jobs=4, cache=ResultCache(cache_dir))
        warm = warm_ex.map_values(marking_row_point, points, key_configs=keys)
        assert list(marks.iterdir()) == []
        assert warm_ex.stats.evaluated == 0
        assert warm == cold
