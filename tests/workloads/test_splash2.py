"""Tests for the SPLASH-2 application models and the microbenchmark."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.workloads import SPLASH2, max_power_microbenchmark, workload_by_name
from repro.workloads.base import WorkloadModel

#: Table 2's application list, in order.
TABLE2_NAMES = [
    "Barnes",
    "Cholesky",
    "FFT",
    "FMM",
    "LU",
    "Ocean",
    "Radiosity",
    "Radix",
    "Raytrace",
    "Volrend",
    "Water-Nsq",
    "Water-Sp",
]


class TestSuite:
    def test_all_twelve_applications(self):
        assert [m.name for m in SPLASH2] == TABLE2_NAMES

    def test_lookup_case_insensitive(self):
        assert workload_by_name("fmm").name == "FMM"
        assert workload_by_name("WATER-SP").name == "Water-Sp"

    def test_unknown_application(self):
        with pytest.raises(ConfigurationError):
            workload_by_name("linpack")

    def test_problem_sizes_quote_table2(self):
        assert workload_by_name("LU").spec.problem_size.startswith("512x512")
        assert workload_by_name("Radix").spec.problem_size.startswith("1M integers")
        assert workload_by_name("Ocean").spec.problem_size == "514x514 ocean"

    def test_power_of_two_restrictions(self):
        assert workload_by_name("FFT").spec.power_of_two_only
        assert workload_by_name("Ocean").spec.power_of_two_only
        assert workload_by_name("Radix").spec.power_of_two_only
        assert not workload_by_name("Cholesky").spec.power_of_two_only

    def test_fmm_is_most_compute_intensive(self):
        # Section 4.2 orders FMM > Cholesky > Radix by computational
        # intensity; the reuse knobs (hot set, locality) order that way,
        # and FMM touches memory least.
        fmm = workload_by_name("FMM").spec
        cholesky = workload_by_name("Cholesky").spec
        radix = workload_by_name("Radix").spec
        assert fmm.mem_ratio < cholesky.mem_ratio
        assert fmm.hot_fraction > cholesky.hot_fraction > radix.hot_fraction
        assert fmm.locality > cholesky.locality > radix.locality


def run_short(model: WorkloadModel, n: int):
    short = WorkloadModel(model.spec.scaled(0.06))
    chip = ChipMultiprocessor(CMPConfig())
    return chip.run(
        [short.thread_ops(t, n) for t in range(n)],
        short.core_timing(),
        warmup_barriers=short.warmup_barriers,
    )


class TestBehaviouralSignatures:
    def test_every_app_simulates_on_4_cores(self):
        for model in SPLASH2:
            result = run_short(model, 4)
            assert result.execution_time_ps > 0
            assert result.total_instructions > 0

    def test_radix_more_memory_bound_than_fmm(self):
        radix = run_short(workload_by_name("Radix"), 1)
        fmm = run_short(workload_by_name("FMM"), 1)
        assert radix.memory_stall_fraction() > fmm.memory_stall_fraction()
        assert radix.l1_miss_rate() > fmm.l1_miss_rate()

    def test_lock_heavy_apps_contend(self):
        radiosity = run_short(workload_by_name("Radiosity"), 4)
        assert radiosity.lock_acquires > 0


class TestMicrobenchmark:
    def test_l1_resident(self):
        ubench = max_power_microbenchmark(total_instructions=30_000)
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [ubench.thread_ops(0, 1)],
            ubench.core_timing(),
            warmup_barriers=ubench.warmup_barriers,
        )
        assert result.l1_miss_rate() < 0.01
        assert result.memory_stall_fraction() < 0.05

    def test_low_cpi(self):
        ubench = max_power_microbenchmark(total_instructions=30_000)
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [ubench.thread_ops(0, 1)],
            ubench.core_timing(),
            warmup_barriers=ubench.warmup_barriers,
        )
        assert result.average_cpi < 0.7
