"""Shared experimental infrastructure (Sections 3.1-3.3 assembled).

One :class:`ExperimentContext` owns everything the evaluation pipelines
need: the Table 1 CMP configuration, the HotSpot-style thermal model over
the 16-core floorplan, the Wattch energy model, the static-power curve,
the Section 3.3 power calibration, and the V/f operating-point table.

Construction runs the calibration microbenchmark once; contexts are
intended to be built once and shared across experiments.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.power.calibration import PowerCalibration, calibrate_power_model
from repro.power.chippower import ChipPowerModel, ChipPowerResult
from repro.power.static import StaticPowerModel
from repro.power.wattch import UnitEnergies, WattchModel
from repro.sim.cmp import ChipMultiprocessor, CMPConfig, SimulationResult
from repro.sim.ops import compile_workload
from repro.tech.technology import NODE_65NM, TechnologyNode, VFTable
from repro.telemetry.record import record_kernel
from repro.thermal.floorplan import cmp_floorplan
from repro.thermal.hotspot import HotSpotModel
from repro.workloads.base import WorkloadModel


class ExperimentContext:
    """The assembled Table 1 machine plus its power/thermal toolchain."""

    def __init__(
        self,
        cmp_config: Optional[CMPConfig] = None,
        tech: TechnologyNode = NODE_65NM,
        ambient_celsius: float = 45.0,
        energies: Optional[UnitEnergies] = None,
        static_model: Optional[StaticPowerModel] = None,
        vf_step_hz: float = 200e6,
        f_min_hz: float = 200e6,
        workload_scale: float = 1.0,
        fast_path: bool = True,
        profile: bool = False,
    ) -> None:
        if workload_scale <= 0:
            raise ConfigurationError("workload_scale must be positive")
        #: Which simulation kernel :meth:`run` uses.  The fast path and
        #: the reference interpreter are bitwise-identical in every
        #: counter (tests/sim/test_fastpath_equivalence.py), so neither
        #: flag enters the fingerprint: cached rows are valid across
        #: kernel modes.
        self.fast_path = fast_path
        self.profile = profile
        self.cmp_config = cmp_config or CMPConfig(
            frequency_hz=tech.f_nominal, voltage=tech.vdd_nominal
        )
        self.tech = tech
        self.workload_scale = workload_scale
        self.thermal = HotSpotModel(
            cmp_floorplan(self.cmp_config.n_cores),
            ambient_celsius=ambient_celsius,
            exclude_from_average=("l2",),
        )
        self.wattch = WattchModel(energies)
        self.static_model = static_model or StaticPowerModel(
            design_ratio=tech.static_fraction_nominal
            / (1.0 - tech.static_fraction_nominal)
        )
        #: The Pentium-M-style operating-point table of Section 3.1:
        #: 200 MHz .. f_nominal in 200 MHz steps, VID linear in frequency
        #: like the datasheet the paper extrapolates from [18].
        self.vf_table = VFTable.linear(
            tech, f_min=f_min_hz, f_max=tech.f_nominal, step=vf_step_hz
        )
        self.calibration: PowerCalibration = calibrate_power_model(
            self.cmp_config, self.thermal, self.wattch, self.static_model
        )
        self.chip_power = ChipPowerModel(
            self.thermal, self.wattch, self.static_model, self.calibration
        )
        # Local import: profiling imports this module at top level.
        from repro.harness.profiling import KernelAggregate

        #: Kernel profiling accumulated over every in-process run.
        self.kernel_log = KernelAggregate()
        #: Everything that determines a simulation's outcome, recorded at
        #: construction time for content-addressed result caching.
        self._fingerprint = {
            "kind": "experiment-context",
            "cmp_config": self.cmp_config,
            "tech": tech,
            "ambient_celsius": ambient_celsius,
            "energies": energies,
            "static_model": self.static_model,
            "vf_step_hz": vf_step_hz,
            "f_min_hz": f_min_hz,
            "workload_scale": workload_scale,
        }

    def fingerprint(self) -> dict:
        """The context's defining parameters, for result-cache keys.

        Two contexts with equal fingerprints produce identical
        simulation results, so the
        :class:`~repro.harness.executor.ResultCache` may reuse rows
        across them.
        """
        return dict(self._fingerprint)

    @property
    def f_nominal(self) -> float:
        """Nominal chip frequency (Table 1: 3.2 GHz)."""
        return self.tech.f_nominal

    @property
    def f_min(self) -> float:
        """Lowest supported chip frequency (Section 3.1: 200 MHz)."""
        return self.vf_table.f_min

    def clamp_frequency(self, f_hz: float) -> float:
        """Clamp a target frequency into the legal scaling range."""
        return min(max(f_hz, self.f_min), self.f_nominal)

    def scaled_model(self, model: WorkloadModel) -> WorkloadModel:
        """``model`` under this context's ``workload_scale``."""
        if self.workload_scale != 1.0:
            return WorkloadModel(model.spec.scaled(self.workload_scale))
        return model

    def precompile(self, model: WorkloadModel, n_threads: int):
        """Warm the process-wide compile cache for one (model, N) pair.

        The executor calls this in the coordinator before dispatching a
        sweep, so forked workers inherit (and pool initializers receive)
        already-compiled streams instead of recompiling per process.
        Returns the :class:`repro.sim.ops.CompileOutcome`.
        """
        return compile_workload(self.scaled_model(model), n_threads)

    def run(
        self,
        model: WorkloadModel,
        n_threads: int,
        frequency_hz: Optional[float] = None,
        voltage: Optional[float] = None,
    ) -> Tuple[SimulationResult, ChipPowerResult]:
        """Simulate one configuration and evaluate its power/thermal state.

        Frequency defaults to nominal; voltage defaults to the V/f table's
        entry for the chosen frequency.
        """
        f_hz = self.clamp_frequency(frequency_hz or self.f_nominal)
        v = voltage if voltage is not None else self.vf_table.voltage_for_frequency(f_hz)
        config = self.cmp_config.with_operating_point(f_hz, v)
        scaled = self.scaled_model(model)
        compiled = compile_workload(scaled, n_threads)
        chip = ChipMultiprocessor(
            config, fast_path=self.fast_path, profile=self.profile
        )
        # The whole program (not just its streams): the fast path reuses
        # the memoized private-line classification across V/f points.
        result = chip.run(
            compiled.program,
            scaled.core_timing(),
            warmup_barriers=scaled.warmup_barriers,
        )
        if result.kernel is not None:
            result.kernel.compile_s = compiled.seconds
            result.kernel.compile_cache_hit = compiled.from_cache
            result.kernel.compile_cache_evicted = compiled.evicted
            self.kernel_log.add(result.kernel)
            # Worker processes aggregate into a pickled *copy* of this
            # context; the capture buffer is how their stats reach the
            # coordinator (no-op outside an executor point evaluation).
            record_kernel(result.kernel)
        power = self.chip_power.evaluate(result)
        return result, power
