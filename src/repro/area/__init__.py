"""CACTI-style cache area / timing / energy estimation.

The paper uses CACTI [40] to size its chip (Table 1's 244.5 mm^2 die) and,
through Wattch, to cost cache accesses.  :mod:`repro.area.cacti` provides
a simplified analytical stand-in calibrated to the paper's published
numbers: the Table 1 cache latencies and the 15.6 mm x 15.6 mm die.
"""

from repro.area.cacti import CacheGeometry, CactiModel, CMPAreaModel

__all__ = ["CacheGeometry", "CactiModel", "CMPAreaModel"]
