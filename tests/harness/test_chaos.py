"""Chaos meta-tests: the real ``fig1`` pipeline under seeded sabotage.

The unit layer proves the executor's retry/resume mechanics in
isolation; these tests prove the property users actually rely on — the
published figure survives chaos.  Each test runs the genuine CLI
(``repro fig1``) under a deterministic fault plan injecting crashes,
hangs, and kills, and asserts the rendered table is *identical* to the
fault-free run's: same rows, same digits, nothing silently missing.
"""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    # Journal/bookkeeping notices must stay off stdout (warm-cache runs
    # are compared byte-for-byte), so assert the split holds everywhere.
    assert "[journal]" not in captured.out
    return code, captured.out


@pytest.fixture(scope="module")
def clean_fig1(tmp_path_factory):
    """The reference: a fault-free serial fig1 table (computed once)."""
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        assert main(["fig1"]) == 0
    return out.getvalue()


class TestChaosConvergence:
    def test_serial_raise_chaos_matches_clean_run(self, capsys, clean_fig1):
        code, out = run_cli(
            capsys,
            "fig1",
            "--inject-faults",
            "seed=3,rate=0.2,kinds=raise",
            "--max-retries",
            "2",
        )
        assert code == 0
        assert out == clean_fig1

    def test_parallel_crash_hang_kill_chaos_matches_clean_run(
        self, capsys, clean_fig1
    ):
        code, out = run_cli(
            capsys,
            "fig1",
            "--jobs",
            "4",
            "--inject-faults",
            "seed=11,rate=0.12,kinds=raise+kill+hang,hang=0.3",
            "--point-timeout",
            "5",
            "--max-retries",
            "3",
        )
        assert code == 0
        assert out == clean_fig1

    def test_same_seed_sabotages_the_same_points(self, capsys, clean_fig1):
        # Determinism of the chaos itself: two runs under the same plan
        # print byte-identical output (including any recovery effects).
        code_a, out_a = run_cli(
            capsys,
            "fig1",
            "--inject-faults",
            "seed=9,rate=0.3,kinds=raise",
            "--max-retries",
            "2",
        )
        code_b, out_b = run_cli(
            capsys,
            "fig1",
            "--inject-faults",
            "seed=9,rate=0.3,kinds=raise",
            "--max-retries",
            "2",
        )
        assert code_a == code_b == 0
        assert out_a == out_b == clean_fig1


class TestQuarantineAndResume:
    def test_permanent_faults_quarantine_then_resume_completes(
        self, capsys, tmp_path, clean_fig1
    ):
        cache = str(tmp_path / "cache")
        code, degraded = run_cli(
            capsys,
            "fig1",
            "--cache",
            cache,
            "--inject-faults",
            "seed=3,rate=0.1,kinds=raise,permanent=1.0",
            "--max-retries",
            "1",
        )
        assert code == 0
        assert "[quarantine]" in degraded
        assert "--resume" in degraded
        assert degraded != clean_fig1

        # The resumed run re-attempts exactly the quarantined points and
        # converges to the clean table (cache replays the rest bitwise).
        code, resumed = run_cli(
            capsys, "fig1", "--cache", cache, "--resume", "latest"
        )
        assert code == 0
        table, _, summary = resumed.rpartition("[executor]")
        assert "[quarantine]" not in resumed
        assert table == clean_fig1.rpartition("[executor]")[0]
        assert "cache hits" in summary

    def test_resume_without_cache_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig1", "--resume", "somerun"])
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "--resume requires --cache" in captured.err

    def test_resume_latest_without_journals_is_rejected(
        self, capsys, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "fig1",
                    "--cache",
                    str(tmp_path / "cache"),
                    "--resume",
                    "latest",
                ]
            )
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "no journalled runs" in captured.err

    def test_journal_notices_go_to_stderr_not_stdout(self, capsys, tmp_path):
        code = main(["fig2", "--cache", str(tmp_path / "cache")])
        captured = capsys.readouterr()
        assert code == 0
        assert "[journal] run " in captured.err
        assert "[journal]" not in captured.out
