"""Transitive determinism taint: DET-* hazards through the call graph.

:mod:`repro.analysis.determinism` flags *direct* hazards — a
``time.time()`` call sitting in ``sim/``.  It cannot see a simulation
function calling an innocent-looking helper in ``harness/`` that
reaches the wall clock three frames down.  This pass closes that hole:

1. every function in the tree is scanned for direct hazard *sites*
   (the same classifiers the direct checker uses), excluding sites
   covered by an audited inline suppression and files that are
   host-side by contract (:data:`determinism.SCOPE_EXEMPT_FRAGMENTS`);
2. a fixpoint over the call graph unions each function's own sites
   with its callees' — the classic monotone taint domain;
3. findings are emitted **at the boundary**: a call site inside the
   determinism scope whose callee is defined *outside* it and carries
   taint.  In-scope callees are never re-flagged here (their hazards
   are already direct findings), so each taint entering the scope is
   reported exactly once, where it crosses.

Dynamic-dispatch conservatism follows the may/must split: taint
*propagates* through every same-name candidate, but a call site is
only *flagged* when every candidate is tainted and out of scope —
ambiguity widens what we track, not what we claim.

The finding message carries the full taint path::

    call to `host_stats` transitively reaches wall-clock read
    `perf_counter` at harness/profiler.py:42
    via host_stats -> _sample_counters

so the audit trail does not require re-running the analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis import determinism
from repro.analysis.determinism import (
    _GLOBAL_RANDOM_FUNCS,
    _WALLCLOCK_DATETIME_ATTRS,
    _WALLCLOCK_TIME_ATTRS,
    _call_target,
    _float_sum_hazard,
    _ModuleAliases,
    _set_like_names,
    _unordered_iter,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, node_id, owned_nodes
from repro.analysis.flow.dataflow import solve_summaries
from repro.analysis.index import FunctionInfo, TreeIndex

#: Severity of a transitive finding, by originating rule.
_SEVERITIES: Dict[str, str] = {
    "DET-WALLCLOCK": "error",
    "DET-RANDOM": "error",
    "DET-SET-ORDER": "warning",
    "DET-FLOAT-SUM": "warning",
}


@dataclass(frozen=True, order=True)
class TaintSource:
    """One direct hazard site somewhere in the tree."""

    rule: str
    file: str
    line: int
    detail: str


TaintSet = FrozenSet[TaintSource]


def _exempt(rel: str) -> bool:
    """Host-side-by-contract files: their hazards never propagate."""
    return any(
        fragment in rel for fragment in determinism.SCOPE_EXEMPT_FRAGMENTS
    )


def direct_sources(info: FunctionInfo, index: TreeIndex) -> TaintSet:
    """Unsuppressed direct DET-* hazard sites inside one function.

    Uses the same classifiers as the direct checker, restricted to the
    nodes owned by this function's frame, and honours inline
    ``# repro: allow[...]`` comments — an audited hazard must not taint
    callers.
    """
    if _exempt(info.file.rel):
        return frozenset()
    aliases = _ModuleAliases(info.file.tree)
    set_names = _set_like_names(info, index)
    sources: Set[TaintSource] = set()

    def add(rule: str, line: int, detail: str) -> None:
        if info.file.allowed(rule, line):
            return
        sources.add(
            TaintSource(rule=rule, file=info.file.rel, line=line, detail=detail)
        )

    for node in owned_nodes(info.node):
        if isinstance(node, ast.Call):
            base, attr = _call_target(node)
            if (
                (base in aliases.time and attr in _WALLCLOCK_TIME_ATTRS)
                or (
                    base in aliases.datetime
                    and attr in _WALLCLOCK_DATETIME_ATTRS
                )
                or (base is None and attr in aliases.bare_wallclock)
            ):
                add(
                    "DET-WALLCLOCK",
                    node.lineno,
                    f"wall-clock read `{attr}`",
                )
            elif base in aliases.random and attr in _GLOBAL_RANDOM_FUNCS:
                add(
                    "DET-RANDOM",
                    node.lineno,
                    f"process-global RNG `random.{attr}`",
                )
            elif (
                base in aliases.random
                and attr == "Random"
                and not node.args
                and not node.keywords
            ):
                add("DET-RANDOM", node.lineno, "unseeded random.Random()")
            elif base is None and attr == "sum" and node.args:
                hazard = _float_sum_hazard(node.args[0], set_names, index)
                if hazard is not None:
                    add(
                        "DET-FLOAT-SUM",
                        node.lineno,
                        f"order-fragile sum() over {hazard}",
                    )
        elif isinstance(node, ast.For):
            reason = _unordered_iter(node.iter, set_names, index)
            if reason is not None:
                add(
                    "DET-SET-ORDER",
                    node.lineno,
                    f"unordered iteration over {reason}",
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                reason = _unordered_iter(generator.iter, set_names, index)
                if reason is not None:
                    add(
                        "DET-SET-ORDER",
                        node.lineno,
                        f"unordered comprehension over {reason}",
                    )
    return frozenset(sources)


def solve_taint(
    index: TreeIndex, graph: CallGraph
) -> Tuple[Dict[str, TaintSet], Dict[str, TaintSet]]:
    """``(summaries, own)`` taint maps for every node.

    ``summaries[nid]`` is the transitive closure (own sites plus every
    call-reachable callee's); ``own[nid]`` is just this function's
    direct sites — emitters need both to reconstruct paths.
    """
    own: Dict[str, TaintSet] = {
        nid: direct_sources(info, index) for nid, info in graph.nodes.items()
    }

    def transfer(
        nid: str, info: FunctionInfo, summaries: Mapping[str, TaintSet]
    ) -> TaintSet:
        out: Set[TaintSource] = set(own[nid])
        for callee in graph.callees(nid, include_refs=False):
            out.update(summaries[callee])
        return frozenset(out)

    summaries = solve_summaries(graph, transfer, bottom=frozenset())
    return summaries, own


def _taint_path(
    graph: CallGraph,
    start: str,
    rule: str,
    own: Mapping[str, TaintSet],
) -> Optional[List[str]]:
    """Deterministic call path from ``start`` to a direct ``rule`` site."""
    return graph.shortest_path(
        start,
        is_target=lambda nid: any(s.rule == rule for s in own.get(nid, ())),
        include_refs=False,
    )


def check(
    index: TreeIndex,
    graph: CallGraph,
    scope: Tuple[str, ...] = determinism.DEFAULT_SCOPE,
) -> List[Finding]:
    """Emit transitive DET-* findings at scope-boundary call sites."""
    summaries, own = solve_taint(index, graph)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str, str]] = set()

    for nid in sorted(graph.nodes):
        info = graph.nodes[nid]
        if not determinism.in_scope(info.file.rel, scope):
            continue
        # Group this function's call edges by site (line + written name).
        sites: Dict[Tuple[int, str], Set[str]] = {}
        for edge in graph.edges.get(nid, ()):
            if edge.kind != "call":
                continue
            sites.setdefault((edge.line, edge.name), set()).add(edge.target)
        for (line, name), targets in sorted(sites.items()):
            candidates = [graph.nodes[t] for t in sorted(targets)]
            # Must-analysis gate: flag only when every candidate is an
            # out-of-scope, non-exempt definition carrying taint.
            if not candidates:
                continue
            if any(
                determinism.in_scope(c.file.rel, scope)
                or _exempt(c.file.rel)
                for c in candidates
            ):
                continue
            tainted_rules: Set[str] = set()
            for target in targets:
                rules = {s.rule for s in summaries.get(target, frozenset())}
                if not tainted_rules:
                    tainted_rules = rules
                else:
                    tainted_rules &= rules
            for rule in sorted(tainted_rules):
                representative = sorted(targets)[0]
                path = _taint_path(graph, representative, rule, own)
                if path is None:
                    continue
                source = min(
                    s for s in own.get(path[-1], ()) if s.rule == rule
                )
                via = " -> ".join(graph.qualname(step) for step in path)
                message = (
                    f"call to `{name}` transitively reaches {source.detail} "
                    f"at {source.file}:{source.line} via {via}"
                )
                key = (info.file.rel, line, rule, message)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        path=info.file.rel,
                        line=line,
                        rule=rule,
                        severity=_SEVERITIES.get(rule, "warning"),
                        message=message,
                        snippet=info.file.snippet(line),
                    )
                )
    findings.sort()
    return findings
