"""HOT-* rules: only ``# repro: hot`` functions are held to them."""

from tests.analysis.conftest import findings_for

BAD = "sim/bad_hotpath.py"
OK = "sim/ok_hotpath.py"


def test_allocation_sites_flagged(fixture_report):
    found = findings_for(fixture_report, "HOT-ALLOC", BAD)
    kinds = " ".join(f.message for f in found)
    assert len(found) == 3  # lambda + comprehension-in-loop + nested def
    assert "lambda" in kinds
    assert "ListComp" in kinds
    assert "nested function `helper`" in kinds


def test_dynamic_dispatch_flagged(fixture_report):
    found = findings_for(fixture_report, "HOT-GETATTR", BAD)
    assert len(found) == 2  # hasattr + getattr
    assert all("`hot_loop`" in f.message for f in found)


def test_try_in_loop_flagged(fixture_report):
    found = findings_for(fixture_report, "HOT-TRY", BAD)
    assert len(found) == 1


def test_format_flagged_but_raise_exempt(fixture_report):
    found = findings_for(fixture_report, "HOT-FORMAT", BAD)
    assert len(found) == 1  # the f-string in the loop; the raise is exempt
    assert "hot_loop" in found[0].message
    assert not [f for f in found if "hot_with_raise" in f.message]


def test_cold_code_never_flagged(fixture_report):
    assert not [f for f in fixture_report.findings if f.path == OK and f.rule.startswith("HOT-")]


def test_live_hot_functions_are_marked(live_report):
    # The contract of docs/ANALYSIS.md: these hot-path entry points carry
    # the marker, so the discipline rules actually watch them.
    from repro.analysis.index import build_index

    from tests.analysis.conftest import LIVE_ROOT

    index = build_index(LIVE_ROOT)
    hot = {
        info.qualname
        for infos in index.functions.values()
        for info in infos
        if info.is_hot
    }
    assert "Core.step_fast" in hot
    assert "ChipSession.run_window" in hot
    assert "compile_stream" in hot
    assert "stream_op_count" in hot
    assert "Tracer.span" in hot
    assert "get_tracer" in hot
