"""Tests for the online DVFS governors."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentContext
from repro.harness.governor import (
    GovernedRun,
    MemorySlackGovernor,
    PerformanceGovernor,
    WindowMeasurement,
    run_governed,
)
from repro.telemetry.timeseries import CounterSampler, channel_values, set_sampler
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.1)


def measurement(frequency=3.2e9, power=10.0, stall=0.3):
    return WindowMeasurement(
        index=0,
        frequency_hz=frequency,
        execution_time_s=1e-5,
        power_w=power,
        memory_stall_fraction=stall,
    )


class TestPerformanceGovernor:
    def test_over_budget_steps_down(self):
        gov = PerformanceGovernor(budget_w=10.0)
        assert gov.next_frequency(measurement(power=12.0)) == pytest.approx(3.0e9)

    def test_headroom_steps_up(self):
        gov = PerformanceGovernor(budget_w=10.0)
        assert gov.next_frequency(
            measurement(frequency=2.0e9, power=5.0)
        ) == pytest.approx(2.2e9)

    def test_dead_band_holds(self):
        gov = PerformanceGovernor(budget_w=10.0, headroom=0.85)
        assert gov.next_frequency(
            measurement(frequency=2.0e9, power=9.0)
        ) == pytest.approx(2.0e9)

    def test_clamped_to_explicit_range(self):
        gov = PerformanceGovernor(budget_w=10.0, f_max_hz=3.2e9, f_min_hz=200e6)
        assert gov.next_frequency(measurement(power=0.1)) == pytest.approx(3.2e9)
        assert gov.next_frequency(
            measurement(frequency=200e6, power=100.0)
        ) == pytest.approx(200e6)

    def test_default_has_no_intrinsic_range(self):
        # Regression: the default used to hardcode the 65 nm 3.2 GHz
        # ceiling, silently wrong for any other technology node.  The
        # default now defers clamping to the context's V/f table.
        gov = PerformanceGovernor(budget_w=10.0)
        assert gov.f_max_hz is None
        assert gov.f_min_hz is None

    def test_for_context_derives_range_from_technology(self):
        from repro.tech import NODE_130NM

        context_130 = ExperimentContext(tech=NODE_130NM, workload_scale=0.1)
        gov = PerformanceGovernor.for_context(context_130, budget_w=10.0)
        assert gov.f_max_hz == pytest.approx(1.6e9)
        assert gov.f_min_hz == pytest.approx(200e6)
        # The 130 nm ladder tops out at its own nominal bin, not 3.2 GHz.
        assert gov.next_frequency(
            measurement(frequency=1.6e9, power=0.1)
        ) == pytest.approx(1.6e9)


class TestMemorySlackGovernor:
    def test_memory_bound_steps_down(self):
        gov = MemorySlackGovernor()
        assert gov.next_frequency(measurement(stall=0.8)) < 3.2e9

    def test_compute_bound_steps_up(self):
        gov = MemorySlackGovernor()
        assert gov.next_frequency(
            measurement(frequency=1.6e9, stall=0.1)
        ) == pytest.approx(2.0e9)

    def test_mid_band_holds(self):
        gov = MemorySlackGovernor()
        assert gov.next_frequency(
            measurement(frequency=1.6e9, stall=0.5)
        ) == pytest.approx(1.6e9)


class TestRunGoverned:
    def test_budget_governor_steps_toward_budget(self, context):
        budget = 0.6 * context.calibration.max_operational_power_w
        gov = PerformanceGovernor(budget_w=budget, step_hz=600e6)
        run = run_governed(context, workload_by_name("FMM"), 4, gov)
        assert len(run.windows) >= 3
        # Once warm windows reveal the overshoot, the governor walks the
        # frequency down monotonically...
        freqs = run.frequency_trajectory
        over = [w.index for w in run.windows if w.power_w > budget]
        assert over, "test premise: FMM at nominal should exceed the budget"
        assert freqs[-1] < freqs[over[0]]
        # ...and the last window is at or near the budget.
        assert run.windows[-1].power_w <= budget * 1.3

    def test_memory_governor_slows_memory_bound_app(self, context):
        gov = MemorySlackGovernor()
        run = run_governed(context, workload_by_name("Radix"), 4, gov)
        assert run.frequency_trajectory[-1] < run.frequency_trajectory[0]

    def test_memory_governor_keeps_compute_app_fast(self, context):
        gov = MemorySlackGovernor()
        run = run_governed(context, workload_by_name("FMM"), 2, gov)
        assert run.frequency_trajectory[-1] >= 2.4e9

    def test_energy_time_totals(self, context):
        gov = MemorySlackGovernor()
        run = run_governed(context, workload_by_name("Radix"), 2, gov)
        assert isinstance(run, GovernedRun)
        assert run.total_time_s > 0
        assert run.total_energy_j > 0
        assert run.average_power_w > 0

    def test_130nm_governed_run_stays_in_table_range(self):
        # Regression for the hardcoded 3.2e9 ceiling: a 130 nm governed
        # run must never request (or realise) a frequency above the
        # node's 1.6 GHz nominal.
        from repro.tech import NODE_130NM

        context_130 = ExperimentContext(tech=NODE_130NM, workload_scale=0.1)
        gov = MemorySlackGovernor.for_context(context_130)
        assert gov.f_max_hz == pytest.approx(1.6e9)
        run = run_governed(context_130, workload_by_name("FMM"), 2, gov)
        assert run.total_time_s > 0
        assert all(f <= 1.6e9 + 1e6 for f in run.frequency_trajectory)

    def test_validation(self, context):
        gov = MemorySlackGovernor()
        with pytest.raises(ConfigurationError):
            run_governed(
                context, workload_by_name("Radix"), 2, gov, barriers_per_window=0
            )

    def test_samples_one_reading_per_decision(self, context):
        sampler = CounterSampler(enabled=True)
        previous = set_sampler(sampler)
        try:
            run = run_governed(
                context, workload_by_name("Radix"), 2, MemorySlackGovernor()
            )
        finally:
            set_sampler(previous)
        series = channel_values(sampler.records())
        decisions = len(run.windows)
        assert len(series["governor.frequency_ghz"]) == decisions
        assert len(series["governor.power_w"]) == decisions
        assert len(series["governor.stall_fraction"]) == decisions
        # Each reading is the frequency chosen for the *next* window, so
        # all but the last line up against the realised trajectory.
        assert series["governor.frequency_ghz"][:-1] == [
            f / 1e9 for f in run.frequency_trajectory[1:]
        ]
        assert series["governor.power_w"] == [w.power_w for w in run.windows]
