"""Dimensional analysis: the DIM-* rules and the unit algebra."""

from repro.analysis import dimensions
from repro.analysis.dimensions import (
    BOTTOM,
    TOP,
    Quantity,
    add_or_compare,
    join,
    multiply,
    power,
    quantity_for_suffix,
)

from tests.analysis.conftest import findings_for

BAD = "power/bad_dimensions.py"
OK = "power/ok_dimensions.py"


# ---------------------------------------------------------------- rules


def test_mismatch_flows_through_unsuffixed_locals(fixture_report):
    lines = {
        f.line: f.message
        for f in findings_for(fixture_report, "DIM-MISMATCH", BAD)
    }
    assert set(lines) == {26, 32}
    # W + s: invisible to the lexical checker, caught by dataflow.
    assert "different dimensions" in lines[26]
    assert "W" in lines[26] and "s" in lines[26]
    # GHz + Hz: same vector, mixed magnitudes.
    assert "mixed magnitudes" in lines[32]
    assert "1e+09" in lines[32]


def test_return_suffix_contract_is_enforced(fixture_report):
    returns = findings_for(fixture_report, "DIM-RETURN", BAD)
    assert len(returns) == 1
    assert "bogus_energy_j" in returns[0].message
    assert "`_j`" in returns[0].message


def test_fractional_exponent_is_flagged(fixture_report):
    exps = findings_for(fixture_report, "DIM-EXP", BAD)
    assert [f.line for f in exps] == [42]
    assert exps[0].severity == "warning"


def test_clean_idioms_stay_clean(fixture_report):
    for rule in ("DIM-MISMATCH", "DIM-RETURN", "DIM-EXP"):
        assert findings_for(fixture_report, rule, OK) == []


def test_live_tree_has_no_dim_findings(live_report):
    for rule in ("DIM-MISMATCH", "DIM-RETURN", "DIM-EXP"):
        assert findings_for(live_report, rule) == []


def test_scope_excludes_out_of_scope_dirs():
    assert dimensions.in_dim_scope("power/chippower.py")
    assert dimensions.in_dim_scope("sim/cmp.py")
    assert dimensions.in_dim_scope("harness/governor.py")
    assert not dimensions.in_dim_scope("harness/executor.py")
    assert not dimensions.in_dim_scope("telemetry/record.py")


# -------------------------------------------------------------- algebra


def test_power_times_time_unifies_with_energy():
    watts = quantity_for_suffix("w")
    seconds = quantity_for_suffix("s")
    joules = quantity_for_suffix("j")
    assert isinstance(watts, Quantity) and isinstance(joules, Quantity)
    product = multiply(watts, seconds)
    assert isinstance(product, Quantity)
    assert product.dims == joules.dims
    assert product.scale == joules.scale


def test_ed2p_compound_suffix_matches_energy_delay_squared():
    joules = quantity_for_suffix("j")
    seconds = quantity_for_suffix("s")
    squared, fractional = power(seconds, dimensions._Const(2.0))
    assert not fractional
    ed2p = multiply(joules, squared)
    declared = dimensions._suffix_of("ed2p_j_s2")
    assert isinstance(ed2p, Quantity) and isinstance(declared, Quantity)
    assert ed2p.dims == declared.dims


def test_compound_suffix_with_and_without_exponent():
    j_s = dimensions._suffix_of("energy_delay_j_s")
    assert isinstance(j_s, Quantity)
    assert j_s.describe().startswith("W·s^2")
    # A digit exponent multiplies the trailing token's vector.
    j_s2 = dimensions._suffix_of("ed2p_j_s2")
    assert isinstance(j_s2, Quantity)
    assert j_s2.describe().startswith("W·s^3")
    # A bare unit token alone is NOT a suffix ("w" the identifier).
    assert dimensions._suffix_of("w") is None


def test_fractional_exponent_reported_by_power():
    watts = quantity_for_suffix("w")
    result, fractional = power(watts, dimensions._Const(0.5))
    assert fractional
    assert result is TOP


def test_mixed_magnitude_sum_records_a_scale_mismatch():
    ghz = quantity_for_suffix("ghz")
    hz = quantity_for_suffix("hz")
    mismatches = []
    add_or_compare(ghz, hz, line=1, mismatches=mismatches)
    assert len(mismatches) == 1
    assert mismatches[0].kind == "scale"


def test_celsius_offset_converts_to_kelvin():
    celsius = quantity_for_suffix("c")
    kelvin = quantity_for_suffix("k")
    assert isinstance(celsius, Quantity) and isinstance(kelvin, Quantity)
    mismatches = []
    result = add_or_compare(
        celsius, dimensions._Offset(), line=1, mismatches=mismatches
    )
    assert mismatches == []
    assert isinstance(result, Quantity)
    assert result.dims == kelvin.dims


def test_join_is_a_least_upper_bound():
    watts = quantity_for_suffix("w")
    seconds = quantity_for_suffix("s")
    assert join(BOTTOM, watts) is watts
    assert join(watts, watts) == watts
    assert join(watts, seconds) is TOP
    assert join(TOP, watts) is TOP


def test_scale_constant_division_normalizes_to_dimensionless():
    joules = quantity_for_suffix("j")
    ratio = multiply(joules, joules, divide=True)
    assert isinstance(ratio, Quantity)
    assert ratio.dims == ()
    assert ratio.scale == 1.0
