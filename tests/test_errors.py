"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.InfeasibleOperatingPoint,
    errors.ConvergenceError,
    errors.SimulationError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS, ids=lambda e: e.__name__)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_single_catch_covers_library_failures():
    from repro.tech import NODE_65NM

    with pytest.raises(errors.ReproError):
        NODE_65NM.fmax(0.0)  # InfeasibleOperatingPoint

    from repro.sim.cache import CacheConfig

    with pytest.raises(errors.ReproError):
        CacheConfig(0, 64, 2)  # ConfigurationError


def test_errors_carry_messages():
    from repro.core import iso_performance_frequency

    with pytest.raises(errors.InfeasibleOperatingPoint, match="overclocking"):
        iso_performance_frequency(3.2e9, 2, 0.4)
