"""Leakage-current models: physical equations and the Eq. 3 curve fit.

Section 2.1 of the paper builds its static-power term from two leakage
components [23]:

* **subthreshold leakage** — exponential in ``-Vth/(n * kT/q)`` with a
  drain-induced barrier lowering (DIBL) term that makes it exponential in
  the supply voltage as well, and a threshold voltage that falls with
  temperature;
* **gate-oxide leakage** — ``I_ox ~ W (V/Tox)^2 exp(-delta * Tox / V)``.

Because those expressions are unwieldy inside an analytical model, the
paper replaces them with a curve-fitted multiplier (its Eq. 3)::

    I_leak(V, T) = I_leak(Vn, Tstd) * H(V, T)

validated against HSpice on an inverter chain (max error 9.5 % at 130 nm,
7.5 % at 65 nm).  We reproduce that workflow in software:
:class:`PhysicalLeakageModel` plays HSpice, :func:`fit_leakage_curve`
performs the fit, and :class:`LeakageFit` reports the same max/average
error statistics.

The fitted functional form is::

    H(V, T) = (V/Vn) * (T/Tstd)^2 * exp(P(V - Vn, T - Tstd))

where ``P`` is a quadratic polynomial in the voltage and temperature
deviations (five fitted constants).  The leading ``(T/Tstd)^2`` factor is
the subthreshold ``(kT/q)^2`` prefactor; the exponential captures the DIBL
and threshold-voltage dependencies.  A log-space linear least-squares
solve seeds the coefficients and a Levenberg-Marquardt pass on *relative*
error polishes them, which lands the fit in the same error band the paper
reports for its HSpice validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.errors import ConfigurationError
from repro.tech.technology import TechnologyNode
from repro.units import ROOM_TEMPERATURE_K, celsius_to_kelvin, thermal_voltage


@dataclass(frozen=True)
class LeakageParameters:
    """Device parameters of the physical leakage model.

    Parameters
    ----------
    subthreshold_slope_factor:
        The ``n`` in the subthreshold exponent ``exp(-Vth / (n kT/q))``;
        typically 1.3-1.6 for bulk CMOS.
    dibl:
        DIBL coefficient ``eta`` (V/V): effective threshold drops by
        ``eta * Vds``, which makes subthreshold leakage exponential in the
        supply voltage.
    vth_temp_coeff:
        Threshold-voltage temperature coefficient (V/K, positive means Vth
        *falls* as temperature rises); ~0.8 mV/K is typical and makes
        total leakage roughly double per 20-25 K, the exponential
        temperature/leakage relation the experimental power model also
        uses (Section 3.3).
    tox_nm:
        Gate-oxide thickness in nanometres (enters the gate-leakage
        exponential).
    gate_delta:
        The ``delta`` constant of the gate-leakage exponential
        ``exp(-delta * Tox / V)`` (1/nm * V).
    gate_fraction_ref:
        Fraction of total leakage that is gate leakage at the reference
        point (nominal voltage, room temperature).  Gate leakage is nearly
        temperature-independent, so this controls how strongly total
        leakage responds to temperature.
    """

    subthreshold_slope_factor: float = 1.4
    dibl: float = 0.08
    vth_temp_coeff: float = 0.0008
    tox_nm: float = 1.6
    gate_delta: float = 6.0
    gate_fraction_ref: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.gate_fraction_ref < 1.0:
            raise ConfigurationError("gate_fraction_ref must be in [0, 1)")
        if self.subthreshold_slope_factor <= 0 or self.tox_nm <= 0:
            raise ConfigurationError("slope factor and tox must be positive")


#: Default device parameters for the two paper nodes.  Thinner oxide, a
#: larger gate-leakage share, and much stronger short-channel DIBL at
#: 65 nm, per the ITRS trend the paper cites.  Together with the node's
#: higher noise-margin floor these reproduce the paper's dual behaviour:
#: deep voltage scaling still pays off at 65 nm (Figure 1's 32-core curve
#: saves power) while the budget-constrained speedup collapses early
#: (Figure 2's 65 nm curve).
DEFAULT_PARAMETERS = {
    "130nm": LeakageParameters(tox_nm=2.2, gate_fraction_ref=0.10, dibl=0.07),
    "65nm": LeakageParameters(tox_nm=1.4, gate_fraction_ref=0.15, dibl=0.13),
    "32nm": LeakageParameters(tox_nm=1.1, gate_fraction_ref=0.25, dibl=0.15),
}


class PhysicalLeakageModel:
    """BSIM-flavoured leakage current, normalised at (Vn, Tstd).

    This class stands in for the paper's HSpice inverter-chain simulations:
    it evaluates the subthreshold and gate-oxide leakage equations of
    Section 2.1 and reports total leakage *relative to* the reference point
    (nominal supply voltage, room temperature), which is exactly the ratio
    the Eq. 3 curve fit has to reproduce.
    """

    def __init__(
        self,
        tech: TechnologyNode,
        params: LeakageParameters | None = None,
    ) -> None:
        self.tech = tech
        self.params = params or DEFAULT_PARAMETERS.get(
            tech.name, LeakageParameters()
        )
        self._ref_sub = self._subthreshold_raw(
            tech.vdd_nominal, ROOM_TEMPERATURE_K
        )
        self._ref_gate = self._gate_raw(tech.vdd_nominal)
        if self._ref_sub <= 0 or self._ref_gate <= 0:
            raise ConfigurationError("reference leakage must be positive")

    def _subthreshold_raw(self, v: float, temperature_k: float) -> float:
        """Unnormalised subthreshold current (arbitrary units)."""
        p = self.params
        vt = thermal_voltage(temperature_k)
        vth_eff = (
            self.tech.vth
            - p.vth_temp_coeff * (temperature_k - ROOM_TEMPERATURE_K)
            - p.dibl * v
        )
        drain_term = 1.0 - math.exp(-v / vt)
        return vt * vt * math.exp(-vth_eff / (p.subthreshold_slope_factor * vt)) * drain_term

    def _gate_raw(self, v: float) -> float:
        """Unnormalised gate-oxide current (arbitrary units)."""
        p = self.params
        return (v / p.tox_nm) ** 2 * math.exp(-p.gate_delta * p.tox_nm / v)

    def relative_current(self, v: float, temperature_k: float) -> float:
        """Total leakage relative to the (Vn, Tstd) reference point.

        Returns the exact quantity ``I_leak(V, T) / I_leak(Vn, Tstd)`` that
        Eq. 3's ``H(V, T)`` approximates.
        """
        if v <= 0:
            raise ConfigurationError(f"supply voltage must be positive, got {v}")
        g = self.params.gate_fraction_ref
        sub = self._subthreshold_raw(v, temperature_k) / self._ref_sub
        gate = self._gate_raw(v) / self._ref_gate
        return (1.0 - g) * sub + g * gate


@dataclass(frozen=True)
class LeakageFit:
    """The curve-fitted ``H(V, T)`` multiplier of the paper's Eq. 3.

    ``multiplier(v, t)`` evaluates::

        H(V, T) = (V/Vn) * (T/Tstd)^2
                  * exp(b_v dV + b_t dT + b_vt dV dT + b_vv dV^2 + b_tt dT^2)

    with ``dV = V - Vn`` and ``dT = T - Tstd``.  ``max_error`` /
    ``mean_error`` are the relative fit errors over the validation grid,
    the analogue of the paper's reported 9.5 % / 0.25 % (130 nm) and
    7.5 % / 0.05 % (65 nm) HSpice-validation numbers.
    """

    v_nominal: float
    b_v: float
    b_t: float
    b_vt: float
    b_vv: float
    b_tt: float
    max_error: float
    mean_error: float

    def multiplier(self, v: float, temperature_k: float) -> float:
        """Evaluate ``H(V, T)``; equals 1 at (Vn, Tstd) by construction."""
        dv = v - self.v_nominal
        dt = temperature_k - ROOM_TEMPERATURE_K
        t_ratio = temperature_k / ROOM_TEMPERATURE_K
        exponent = (
            self.b_v * dv
            + self.b_t * dt
            + self.b_vt * dv * dt
            + self.b_vv * dv * dv
            + self.b_tt * dt * dt
        )
        return (v / self.v_nominal) * t_ratio * t_ratio * math.exp(exponent)

    def __call__(self, v: float, temperature_k: float) -> float:
        return self.multiplier(v, temperature_k)


def _default_grids(tech: TechnologyNode) -> Tuple[np.ndarray, np.ndarray]:
    """Validation grid mirroring the paper's HSpice sweep.

    Voltage runs from the noise-margin floor to nominal; temperature from
    30 C to 110 C (the paper sweeps its HSpice runs over the full operating
    range of its thermal model).
    """
    v_grid = np.linspace(tech.v_min, tech.vdd_nominal, 25)
    t_grid = np.array([celsius_to_kelvin(t) for t in np.linspace(30.0, 110.0, 17)])
    return v_grid, t_grid


def fit_leakage_curve(
    model: PhysicalLeakageModel,
    v_grid: Sequence[float] | None = None,
    t_grid: Sequence[float] | None = None,
) -> LeakageFit:
    """Fit Eq. 3's ``H(V, T)`` to the physical leakage model.

    After dividing out the fixed ``(V/Vn) (T/Tstd)^2`` prefactor and taking
    logarithms, the model is linear in the two exponents, so this is an
    ordinary least-squares solve over the (V, T) grid.  The returned
    :class:`LeakageFit` records max and mean relative error, reproducing
    the validation the paper performs against HSpice.
    """
    tech = model.tech
    if v_grid is None or t_grid is None:
        default_v, default_t = _default_grids(tech)
        v_grid = default_v if v_grid is None else np.asarray(v_grid, dtype=float)
        t_grid = default_t if t_grid is None else np.asarray(t_grid, dtype=float)
    v_grid = np.asarray(v_grid, dtype=float)
    t_grid = np.asarray(t_grid, dtype=float)

    points = [
        (float(v), float(t), model.relative_current(float(v), float(t)))
        for v in v_grid
        for t in t_grid
    ]

    def features(v: float, t: float) -> np.ndarray:
        dv = v - tech.vdd_nominal
        dt = t - ROOM_TEMPERATURE_K
        return np.array([dv, dt, dv * dt, dv * dv, dt * dt])

    design = np.array([features(v, t) for v, t, _ in points])
    log_targets = np.array(
        [
            math.log(h / ((v / tech.vdd_nominal) * (t / ROOM_TEMPERATURE_K) ** 2))
            for v, t, h in points
        ]
    )
    seed, *_ = np.linalg.lstsq(design, log_targets, rcond=None)

    def relative_residuals(coeffs: np.ndarray) -> np.ndarray:
        residuals = np.empty(len(points))
        for i, ((v, t, h), row) in enumerate(zip(points, design)):
            prefactor = (v / tech.vdd_nominal) * (t / ROOM_TEMPERATURE_K) ** 2
            h_fit = prefactor * math.exp(float(row @ coeffs))
            residuals[i] = (h_fit - h) / h
        return residuals

    solution = least_squares(relative_residuals, seed, method="lm")
    errors = np.abs(relative_residuals(solution.x))
    b_v, b_t, b_vt, b_vv, b_tt = (float(c) for c in solution.x)
    return LeakageFit(
        v_nominal=tech.vdd_nominal,
        b_v=b_v,
        b_t=b_t,
        b_vt=b_vt,
        b_vv=b_vv,
        b_tt=b_tt,
        max_error=float(errors.max()),
        mean_error=float(errors.mean()),
    )


@lru_cache(maxsize=None)
def default_leakage_multiplier(tech: TechnologyNode) -> LeakageFit:
    """The cached default ``H(V, T)`` fit for a technology node.

    This is what the analytical power model (Eq. 4) uses unless the caller
    supplies a custom fit.
    """
    return fit_leakage_curve(PhysicalLeakageModel(tech))
