"""Design-space sensitivity sweeps over the CMP substrate.

The paper fixes its machine (Table 1) and varies only (N, V, f).  Its
related work (Huh et al. [17], Ekman & Stenström [9]) asks the prior
question: how sensitive are the conclusions to the machine itself?
This module sweeps one architectural parameter at a time — L2 capacity,
bus width, memory latency — and reports how an application's nominal
efficiency and memory boundedness move, using the same simulator stack.

Every (variant, core-count) run is independent, so the sweep fans them
out through a :class:`~repro.harness.executor.SweepExecutor` and
memoizes each run keyed on (machine config, workload spec, N) — two
variant dictionaries that share a machine share its cached runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.executor import SweepExecutor
from repro.sim.bus import BusConfig
from repro.sim.cache import CacheConfig
from repro.sim.cmp import ChipMultiprocessor, CMPConfig
from repro.sim.memory import MemoryConfig
from repro.workloads.base import WorkloadModel, WorkloadSpec


@dataclass(frozen=True)
class DesignPoint:
    """One machine variant's measurements for one application."""

    label: str
    n: int
    execution_time_s: float
    nominal_efficiency: float
    l1_miss_rate: float
    memory_stall_fraction: float
    bus_utilisation: float


@dataclass(frozen=True)
class DesignRunRow:
    """The flat, cacheable summary of one (machine, workload, N) run."""

    n: int
    execution_time_ps: int
    execution_time_s: float
    l1_miss_rate: float
    memory_stall_fraction: float
    bus_utilisation: float


@dataclass(frozen=True)
class DesignRunTask:
    """One machine-variant simulation request."""

    config: CMPConfig
    spec: WorkloadSpec
    n: int


def _run(config: CMPConfig, model: WorkloadModel, n: int):
    from repro.sim.ops import compile_workload

    compiled = compile_workload(model, n)
    chip = ChipMultiprocessor(config)
    return chip.run(
        compiled.program,
        model.core_timing(),
        warmup_barriers=model.warmup_barriers,
    )


def _precompile_design_runs(tasks: List[DesignRunTask]) -> None:
    """Executor warm-up hook: compile each pending (spec, N) stream once.

    Design sweeps bypass :class:`~repro.harness.context.ExperimentContext`
    (no workload scale), so this compiles the raw specs directly.  Forked
    workers then inherit the warm process-wide compile cache.
    """
    from repro.sim.ops import compile_workload

    seen = set()
    for task in tasks:
        key = (task.spec, task.n)
        if key not in seen:
            seen.add(key)
            compile_workload(WorkloadModel(task.spec), task.n)


def _design_run(task: DesignRunTask) -> DesignRunRow:
    """Worker: simulate one machine variant and flatten the outcome."""
    result = _run(task.config, WorkloadModel(task.spec), task.n)
    tn = result.execution_time_ps
    return DesignRunRow(
        n=task.n,
        execution_time_ps=tn,
        execution_time_s=result.execution_time_s,
        l1_miss_rate=result.l1_miss_rate(),
        memory_stall_fraction=result.memory_stall_fraction(),
        bus_utilisation=result.bus.utilisation(tn),
    )


def sweep_design_parameter(
    model: WorkloadModel,
    variants: Dict[str, CMPConfig],
    n_threads: int = 8,
    executor: Optional[SweepExecutor] = None,
) -> List[DesignPoint]:
    """Measure one application across labelled machine variants.

    Each variant runs at 1 and ``n_threads`` cores so the nominal
    efficiency (Eq. 6) is measured per machine, like the paper's
    profiling step.  The cache key deliberately excludes the variant
    label: renaming a variant, or listing the same machine under two
    labels, reuses the memoized runs.
    """
    if not variants:
        raise ConfigurationError("need at least one variant")
    executor = executor if executor is not None else SweepExecutor()
    labels = list(variants)
    tasks: List[DesignRunTask] = []
    for label in labels:
        config = variants[label]
        tasks.append(DesignRunTask(config=config, spec=model.spec, n=1))
        tasks.append(DesignRunTask(config=config, spec=model.spec, n=n_threads))
    rows = executor.map_values(
        _design_run,
        tasks,
        key_configs=[{"kind": "designrun", "task": task} for task in tasks],
        precompile=_precompile_design_runs,
    )
    points: List[DesignPoint] = []
    for index, label in enumerate(labels):
        t1 = rows[2 * index].execution_time_ps
        result = rows[2 * index + 1]
        points.append(
            DesignPoint(
                label=label,
                n=n_threads,
                execution_time_s=result.execution_time_s,
                nominal_efficiency=t1 / (n_threads * result.execution_time_ps),
                l1_miss_rate=result.l1_miss_rate,
                memory_stall_fraction=result.memory_stall_fraction,
                bus_utilisation=result.bus_utilisation,
            )
        )
    return points


def l2_capacity_variants(
    capacities_mb: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing only in shared-L2 capacity (Table 1 uses 4 MB)."""
    base = base or CMPConfig()
    variants = {}
    for mb in capacities_mb:
        capacity = int(mb * 1024 * 1024)
        variants[f"L2={mb:g}MB"] = replace(
            base,
            l2_config=CacheConfig(
                capacity_bytes=capacity,
                line_bytes=base.l2_config.line_bytes,
                associativity=base.l2_config.associativity,
            ),
        )
    return variants


def bus_width_variants(
    data_cycles: Sequence[int] = (2, 4, 8, 16),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing in bus data-transfer occupancy (width)."""
    base = base or CMPConfig()
    return {
        f"bus-data={cycles}cyc": replace(
            base,
            bus_config=BusConfig(
                address_cycles=base.bus_config.address_cycles,
                data_cycles=cycles,
            ),
        )
        for cycles in data_cycles
    }


def memory_latency_variants(
    latencies_ns: Sequence[float] = (40.0, 75.0, 150.0, 300.0),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing in DRAM round-trip latency (Table 1: 75 ns)."""
    base = base or CMPConfig()
    return {
        f"mem={ns:g}ns": replace(
            base,
            memory_config=MemoryConfig(
                round_trip_ns=ns,
                n_banks=base.memory_config.n_banks,
                bank_busy_ns=base.memory_config.bank_busy_ns,
            ),
        )
        for ns in latencies_ns
    }


def interconnect_variants(
    crossbar_channels: Sequence[int] = (2, 4, 8),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """The paper's shared bus versus banked crossbars (extension)."""
    base = base or CMPConfig()
    variants = {"bus": replace(base, interconnect="bus")}
    for channels in crossbar_channels:
        variants[f"xbar-{channels}ch"] = replace(
            base, interconnect="crossbar", crossbar_channels=channels
        )
    return variants
