"""The top-level chip multiprocessor: cores + L1s + bus + L2 + DRAM.

:class:`ChipMultiprocessor` assembles the Table 1 machine, runs one
parallel workload to completion, and returns a :class:`SimulationResult`
with every counter the power/thermal pipeline needs.

Scheduling is conservative-time: a min-heap keyed on each core's local
clock always advances the furthest-behind core, so shared-resource
reservations (bus, locks, memory banks) are handed out in consistent
global-time order.  Barriers park arriving cores until the last thread
arrives; the release pays a fixed synchronisation cost.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.bus import BankedCrossbar, BusConfig, SharedBus
from repro.sim.cache import Cache, CacheConfig
from repro.sim.clock import ClockDomain
from repro.sim.coherence import CoherenceStats, MESIController
from repro.sim.cpu import DONE, RUNNING, Core, CoreStats, CoreTimingConfig, LockTable
from repro.sim.memory import MainMemory, MemoryConfig
from repro.sim.ops import (
    CompiledProgram,
    classify_private_lines,
    resolve_address_streams,
)
from repro.telemetry.timeseries import get_sampler
from repro.telemetry.trace import get_tracer
from repro.units import GIGA, PICO

#: Horizon passed to ``step_fast`` when no other core is pending in the
#: heap: compares greater than every real ``(time_ps, core_id)`` key.
_NO_HORIZON = (float("inf"), -1)


@dataclass(frozen=True)
class CMPConfig:
    """The machine of Table 1 (defaults) with DVFS knobs.

    ``frequency_hz``/``voltage`` are the chip-wide operating point (the
    paper applies global V/f scaling).  On-chip latencies are expressed in
    cycles and therefore track the clock; the memory config is wall-clock.
    """

    n_cores: int = 16
    frequency_hz: float = 3.2e9
    voltage: float = 1.1
    l1_config: CacheConfig = CacheConfig(
        capacity_bytes=64 * 1024, line_bytes=64, associativity=2
    )
    l2_config: CacheConfig = CacheConfig(
        capacity_bytes=4 * 1024 * 1024, line_bytes=128, associativity=8
    )
    bus_config: BusConfig = BusConfig()
    memory_config: MemoryConfig = MemoryConfig()
    l1_hit_cycles: int = 2
    l2_hit_cycles: int = 12
    cache_to_cache_cycles: int = 16
    barrier_release_cycles: int = 40
    #: Thrifty-barrier mode [26]: waiting cores drop into an ACPI-like
    #: sleep state instead of spinning.  The stall predictor wakes the
    #: core ``sleep_wakeup_cycles`` before the (predicted) release so the
    #: wake-up latency is hidden — the core sleeps for
    #: ``wait - wakeup`` and spins the remainder.  A core only sleeps
    #: when the wait exceeds twice the wake-up penalty, the break-even
    #: rule of the paper's prior work; the predictor is idealised as
    #: exact (no mispredictions).
    barrier_sleep: bool = False
    sleep_wakeup_cycles: int = 200
    #: Interconnect topology (extension): ``"bus"`` is the paper's
    #: machine; ``"crossbar"`` provides ``crossbar_channels`` independent
    #: channels selected by line address.
    interconnect: str = "bus"
    crossbar_channels: int = 4
    #: Next-line L1 prefetching (extension; off to match the paper).
    prefetch_next_line: bool = False

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        if self.frequency_hz <= 0 or self.voltage <= 0:
            raise ConfigurationError("frequency and voltage must be positive")
        if self.sleep_wakeup_cycles < 0:
            raise ConfigurationError("sleep_wakeup_cycles must be >= 0")
        if self.interconnect not in ("bus", "crossbar"):
            raise ConfigurationError(
                f"unknown interconnect {self.interconnect!r}"
            )
        if self.crossbar_channels < 1:
            raise ConfigurationError("crossbar_channels must be >= 1")

    def with_operating_point(self, frequency_hz: float, voltage: float) -> "CMPConfig":
        """A copy of this configuration at a different DVFS point."""
        return CMPConfig(
            n_cores=self.n_cores,
            frequency_hz=frequency_hz,
            voltage=voltage,
            l1_config=self.l1_config,
            l2_config=self.l2_config,
            bus_config=self.bus_config,
            memory_config=self.memory_config,
            l1_hit_cycles=self.l1_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            cache_to_cache_cycles=self.cache_to_cache_cycles,
            barrier_release_cycles=self.barrier_release_cycles,
            barrier_sleep=self.barrier_sleep,
            sleep_wakeup_cycles=self.sleep_wakeup_cycles,
            interconnect=self.interconnect,
            crossbar_channels=self.crossbar_channels,
            prefetch_next_line=self.prefetch_next_line,
        )


@dataclass
class KernelStats:
    """How the simulation kernel executed one run (host-side profiling).

    Everything here describes the *simulator's* behaviour on the host —
    wall-clock time, fast-path coverage — and never feeds back into the
    simulated counters, which are bitwise-identical across kernel modes.
    """

    #: ``"fast"`` (compiled streams + L1-hit short-circuit) or
    #: ``"reference"`` (one op per scheduler pop through the controller).
    mode: str
    #: Source ops executed (fused compute segments counted individually).
    total_ops: int = 0
    #: Ops resolved by the fast path without entering the controller.
    fast_path_ops: int = 0
    #: Ops routed through the reference machinery (misses, upgrades,
    #: critical sections).
    slow_path_ops: int = 0
    #: Barrier registrations handled by the scheduler.
    barrier_ops: int = 0
    #: Wall-clock seconds the scheduler loop ran.
    sim_wall_s: float = 0.0
    #: Wall-clock seconds spent compiling the op streams (0 when the
    #: compile cache was warm); filled by the caller that compiled.
    compile_s: float = 0.0
    #: Whether the op streams came from a warm compile cache.
    compile_cache_hit: bool = False
    #: Whether compiling this run's streams evicted another entry from
    #: the bounded compile cache (a sweep's working set outgrew it).
    compile_cache_evicted: bool = False
    #: Optional per-subsystem wall time (populated when profiling):
    #: ``memory`` (controller reads/writes), ``critical`` (lock
    #: sections), ``barrier`` (barrier bookkeeping).
    subsystem_s: Dict[str, float] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Simulated ops per host second (0 when the run took no time)."""
        return self.total_ops / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    @property
    def fast_path_ratio(self) -> float:
        """Fraction of ops the fast path resolved."""
        return self.fast_path_ops / self.total_ops if self.total_ops else 0.0


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    config: CMPConfig
    n_threads: int
    execution_time_ps: int
    core_stats: List[CoreStats]
    coherence: CoherenceStats
    l1_caches: List[Cache]
    l2: Cache
    bus: SharedBus
    memory_requests: int
    lock_acquires: int
    lock_contended: int
    barriers: int
    #: Per-core (frequency, voltage); equals the chip-wide operating
    #: point unless per-core DVFS was used.
    core_operating_points: List[Tuple[float, float]] = field(default_factory=list)
    #: Host-side kernel profiling (never affects simulated counters).
    kernel: Optional[KernelStats] = None

    def core_frequency(self, core_index: int) -> float:
        """Clock frequency of one core (hertz)."""
        if self.core_operating_points:
            return self.core_operating_points[core_index][0]
        return self.config.frequency_hz

    def core_voltage(self, core_index: int) -> float:
        """Supply voltage of one core (volts)."""
        if self.core_operating_points:
            return self.core_operating_points[core_index][1]
        return self.config.voltage

    @property
    def execution_time_s(self) -> float:
        """Wall-clock execution time in seconds."""
        return self.execution_time_ps * PICO

    @property
    def total_instructions(self) -> int:
        """Dynamic instructions over all threads."""
        return sum(s.instructions for s in self.core_stats)

    @property
    def average_cpi(self) -> float:
        """Aggregate CPI: total core-busy cycles per instruction.

        Each core's cycles are counted in its own clock domain, so the
        metric stays meaningful under per-core DVFS.
        """
        total_cycles = 0.0
        for i, s in enumerate(self.core_stats):
            clock = ClockDomain(self.core_frequency(i))
            total_cycles += clock.ps_to_cycles(s.total_active_ps)
        instr = self.total_instructions
        return total_cycles / instr if instr else 0.0

    def l1_miss_rate(self) -> float:
        """Combined L1 data miss rate."""
        return self.coherence.l1_miss_rate()

    def memory_stall_fraction(self) -> float:
        """Fraction of total core-active time spent stalled on memory."""
        active = sum(s.total_active_ps for s in self.core_stats)
        stalled = sum(s.stall_mem_ps for s in self.core_stats)
        return stalled / active if active else 0.0


class ChipMultiprocessor:
    """Builds and runs the Table 1 CMP on one workload."""

    #: Safety valve against scheduler bugs: no sane run needs more steps.
    MAX_STEPS = 500_000_000

    def __init__(
        self,
        config: CMPConfig | None = None,
        fast_path: bool = True,
        profile: bool = False,
    ) -> None:
        self.config = config or CMPConfig()
        self.fast_path = fast_path
        self.profile = profile

    def run(
        self,
        thread_ops: CompiledProgram | Sequence[Iterable[tuple]],
        timing: CoreTimingConfig | Sequence[CoreTimingConfig] | None = None,
        warmup_barriers: int = 0,
        core_operating_points: Optional[Sequence[Tuple[float, float]]] = None,
    ) -> SimulationResult:
        """Simulate the workload's threads to completion.

        ``thread_ops`` supplies one operation stream per thread — or a
        whole :class:`repro.sim.ops.CompiledProgram`, which additionally
        carries the memoized private-line classification the fast path
        uses to widen its safe horizon.  The number of threads must not
        exceed the configured core count (unused cores are shut down,
        consuming nothing — Section 4.1).

        ``warmup_barriers`` implements the paper's "skip initialization"
        methodology: when that many barriers have completed, all activity
        counters are reset and the measured execution time starts there,
        while cache/coherence state carries over warm.

        ``core_operating_points`` enables **per-core DVFS** (the paper's
        "beyond the scope" extension): one (frequency, voltage) pair per
        thread.  The uncore (bus, L2) stays in the chip-wide
        ``config.frequency_hz`` domain; memory remains wall-clock.

        ``fast_path`` (constructor) selects the execution kernel: the
        fast path compiles streams and short-circuits L1 hits; the
        reference interpreter routes every op through the controller.
        Both produce bitwise-identical counters.
        """
        n_threads = (
            thread_ops.n_threads
            if isinstance(thread_ops, CompiledProgram)
            else len(thread_ops)
        )
        session = ChipSession(
            self.config,
            n_threads=n_threads,
            timing=timing,
            core_operating_points=core_operating_points,
            fast_path=self.fast_path,
            profile=self.profile,
        )
        return session.run_window(thread_ops, warmup_barriers=warmup_barriers)


class ChipSession:
    """Incremental execution: the machine persists across windows.

    Where :meth:`ChipMultiprocessor.run` builds a fresh machine per call,
    a session keeps caches, coherence state, and local clocks alive so a
    workload can be fed window by window — the substrate for *online*
    DVFS governors (:mod:`repro.harness.governor`) that change the
    operating point between windows with warm caches.
    """

    #: Safety valve against scheduler bugs (per window).
    MAX_STEPS = ChipMultiprocessor.MAX_STEPS

    def __init__(
        self,
        config: CMPConfig,
        n_threads: int,
        timing: CoreTimingConfig | Sequence[CoreTimingConfig] | None = None,
        core_operating_points: Optional[Sequence[Tuple[float, float]]] = None,
        fast_path: bool = True,
        profile: bool = False,
    ) -> None:
        if n_threads < 1:
            raise ConfigurationError("need at least one thread")
        if n_threads > config.n_cores:
            raise ConfigurationError(
                f"{n_threads} threads exceed the {config.n_cores}-core chip"
            )
        if core_operating_points is not None:
            if len(core_operating_points) != n_threads:
                raise ConfigurationError(
                    "need one (frequency, voltage) pair per thread"
                )
            for f_hz, v in core_operating_points:
                if f_hz <= 0 or v <= 0:
                    raise ConfigurationError("operating points must be positive")
        self.config = config
        self.n_threads = n_threads
        self.fast_path = fast_path
        self.profile = profile
        if timing is None:
            timings = [CoreTimingConfig()] * n_threads
        elif isinstance(timing, CoreTimingConfig):
            timings = [timing] * n_threads
        else:
            timings = list(timing)
            if len(timings) != n_threads:
                raise ConfigurationError(
                    "need one CoreTimingConfig per thread"
                )
        self._timings = timings
        self._clock = ClockDomain(config.frequency_hz)
        if core_operating_points is None:
            self._core_operating_points = None
            core_clocks = [self._clock] * n_threads
        else:
            self._core_operating_points = [tuple(p) for p in core_operating_points]
            core_clocks = [
                ClockDomain(f_hz) for f_hz, _v in core_operating_points
            ]
        self._core_clocks = core_clocks
        if config.interconnect == "crossbar":
            self._bus = BankedCrossbar(
                config.bus_config, self._clock, n_channels=config.crossbar_channels
            )
        else:
            self._bus = SharedBus(config.bus_config, self._clock)
        self._memory = MainMemory(config.memory_config)
        self._l1s = [Cache(config.l1_config) for _ in range(n_threads)]
        self._l2 = Cache(config.l2_config)
        self._controller = MESIController(
            self._l1s,
            self._l2,
            self._bus,
            self._memory,
            self._clock,
            l1_hit_cycles=config.l1_hit_cycles,
            l2_hit_cycles=config.l2_hit_cycles,
            cache_to_cache_cycles=config.cache_to_cache_cycles,
            core_clocks=core_clocks,
            prefetch_next_line=config.prefetch_next_line,
        )
        self._locks = LockTable()
        self._cores = [
            Core(i, iter(()), self._controller, core_clocks[i], timings[i], self._locks)
            for i in range(n_threads)
        ]

    def set_operating_point(self, frequency_hz: float, voltage: float) -> None:
        """Chip-wide DVFS between windows (per-core points are replaced)."""
        if frequency_hz <= 0 or voltage <= 0:
            raise ConfigurationError("operating point must be positive")
        self.config = self.config.with_operating_point(frequency_hz, voltage)
        self._clock = ClockDomain(frequency_hz)
        self._controller.set_clock(self._clock)
        self._core_clocks = [self._clock] * self.n_threads
        self._core_operating_points = None
        for core in self._cores:
            core.set_clock(self._clock)

    def _reset_counters(self) -> None:
        for core in self._cores:
            core.stats = CoreStats()
        for l1 in self._l1s:
            l1.hits = l1.misses = 0
            l1.evictions = l1.writebacks = 0
        l2 = self._l2
        l2.hits = l2.misses = l2.evictions = l2.writebacks = 0
        self._controller.stats = CoherenceStats()
        self._bus.transactions = self._bus.data_transfers = 0
        self._bus.busy_ps = self._bus.wait_ps = 0
        self._memory.requests = 0
        self._locks.acquires = self._locks.contended_acquires = 0

    # repro: hot
    def run_window(
        self,
        thread_ops: CompiledProgram | Sequence[Iterable[tuple]],
        warmup_barriers: int = 0,
    ) -> SimulationResult:
        """Run one window of operations to completion on the warm machine.

        Cores are aligned to a common start time (as if released from a
        barrier), counters reset, and the window simulated; caches and
        reservations persist into the next window.  A
        :class:`CompiledProgram` window reuses its memoized private-line
        classification; raw streams are classified per window (a line
        private within this window is untouchable by peers for exactly
        this window's duration, which is all the bypass needs).
        """
        config = self.config
        n_threads = self.n_threads
        program = thread_ops if isinstance(thread_ops, CompiledProgram) else None
        streams = program.streams if program is not None else thread_ops
        if len(streams) != n_threads:
            raise ConfigurationError(
                f"window has {len(streams)} streams for {n_threads} threads"
            )
        clock = self._clock
        cores = self._cores
        core_clocks = self._core_clocks

        window_start = max(core.time_ps for core in cores)
        use_fast = self.fast_path
        tracer = get_tracer()
        # An enabled tracer turns the per-subsystem slow-path timers on
        # even without --profile: they are host-side only and feed the
        # window's aggregate spans, never the simulated counters.
        profile_timers = self.profile or tracer.enabled
        if use_fast:
            l1_config = config.l1_config
            line_shift = l1_config.line_shift
            n_sets = l1_config.n_sets
            way_shift = l1_config.way_shift
            if program is not None:
                private = program.private_lines(line_shift)
                streams = program.resolved_streams(line_shift, n_sets, way_shift)
            else:
                streams = [
                    ops if type(ops) is list else list(ops) for ops in streams
                ]
                private = classify_private_lines(streams, line_shift)
                streams = resolve_address_streams(
                    streams, line_shift, n_sets, way_shift
                )
            for core, ops, private_lines in zip(cores, streams, private):
                core.time_ps = window_start
                core.bind_stream(ops)
                core.prepare_fast_path(
                    profile=profile_timers, private_lines=private_lines
                )
        else:
            for core, ops in zip(cores, streams):
                core.time_ps = window_start
                core._ops = iter(ops)
        self._reset_counters()
        steppers = [
            core.step_fast if use_fast else core.step for core in cores
        ]
        subsystem_totals: Dict[str, float] = {}

        with tracer.span(
            "kernel.window",
            mode="fast" if use_fast else "reference",
            threads=n_threads,
        ) as kernel_span:
            # repro: allow[DET-WALLCLOCK] host-side kernel timing; never feeds simulated state
            wall_start = time.perf_counter()

            heap: List[tuple] = [(window_start, i) for i in range(n_threads)]
            heapq.heapify(heap)
            heappop = heapq.heappop
            heappush = heapq.heappush
            barrier_waiters: Dict[int, List[int]] = {}
            barriers_seen = 0
            barrier_ops = 0
            reference_ops = 0
            finished = 0
            steps = 0
            measurement_start_ps = window_start
            warmup_remaining = warmup_barriers

            while heap:
                steps += 1
                if steps > self.MAX_STEPS:
                    raise SimulationError(
                        "scheduler exceeded MAX_STEPS (deadlock?)"
                    )
                _, core_id = heappop(heap)
                core = cores[core_id]
                if use_fast:
                    # Safe horizon for the batch: the next core's heap key.
                    # Parked (barrier) and finished cores cannot act before
                    # this core, so an empty heap means no horizon at all.
                    if heap:
                        next_time, next_id = heap[0]
                    else:
                        next_time, next_id = _NO_HORIZON
                    status = steppers[core_id](next_time, next_id)
                else:
                    status = steppers[core_id]()
                if status != DONE:
                    reference_ops += 1
                if status == RUNNING:
                    heappush(heap, (core.time_ps, core_id))
                elif status == DONE:
                    finished += 1
                else:  # AT_BARRIER
                    barrier_ops += 1
                    barrier_id = core.pending_barrier
                    waiters = barrier_waiters.setdefault(barrier_id, [])
                    waiters.append(core_id)
                    if len(waiters) == n_threads:
                        barriers_seen += 1
                        # repro: allow[HOT-ALLOC] runs once per barrier release, not per op
                        release = max(cores[w].time_ps for w in waiters)
                        release += clock.cycles_to_ps(
                            config.barrier_release_cycles
                        )
                        for waiter_id in waiters:
                            waiter = cores[waiter_id]
                            wait_ps = release - waiter.time_ps
                            wakeup_ps = core_clocks[waiter_id].cycles_to_ps(
                                config.sleep_wakeup_cycles
                            )
                            if config.barrier_sleep and wait_ps > 2 * wakeup_ps:
                                # Thrifty barrier: sleep until the predictor
                                # wakes the core just in time; spin the
                                # final wake-up window.
                                waiter.stats.sleep_ps += wait_ps - wakeup_ps
                                waiter.stats.sync_wait_ps += wakeup_ps
                            else:
                                waiter.stats.sync_wait_ps += wait_ps
                            waiter.time_ps = release
                            heappush(heap, (release, waiter_id))
                        del barrier_waiters[barrier_id]
                        if warmup_remaining and barriers_seen == warmup_remaining:
                            # End of initialization: reset every activity
                            # counter; caches stay warm.
                            measurement_start_ps = release
                            barriers_seen = 0
                            warmup_remaining = 0
                            self._reset_counters()

            # repro: allow[DET-WALLCLOCK] host-side kernel timing; never feeds simulated state
            sim_wall_s = time.perf_counter() - wall_start

            if profile_timers and use_fast:
                subsystem_counts: Dict[str, int] = {}
                for core in cores:
                    # Sorted so the totals' accumulation and insertion
                    # order never depend on which op kind a core hit
                    # first.
                    for name, seconds in sorted(core.subsystem_s.items()):
                        subsystem_totals[name] = (
                            subsystem_totals.get(name, 0.0) + seconds
                        )
                    for name, count in sorted(core.subsystem_n.items()):
                        subsystem_counts[name] = (
                            subsystem_counts.get(name, 0) + count
                        )
                # The slow path is far too hot for per-op spans; report
                # each subsystem's accumulated wall time as one
                # aggregate child span of the window.
                for name in sorted(subsystem_totals):
                    tracer.aggregate(
                        # repro: allow[HOT-FORMAT] window epilogue; runs once per subsystem per window
                        f"kernel.slow_path.{name}",
                        subsystem_totals[name],
                        count=subsystem_counts.get(name, 1),
                    )

        if finished != n_threads:
            stuck = sorted(
                core_id for waiters in barrier_waiters.values() for core_id in waiters
            )
            raise SimulationError(
                f"deadlock: threads {stuck} never released from a barrier "
                "(threads must all reach every barrier)"
            )

        if use_fast:
            fast_ops = sum(core.fast_ops for core in cores)
            slow_ops = sum(core.slow_ops for core in cores)
            kernel = KernelStats(
                mode="fast",
                total_ops=fast_ops + slow_ops + barrier_ops,
                fast_path_ops=fast_ops,
                slow_path_ops=slow_ops,
                barrier_ops=barrier_ops,
                sim_wall_s=sim_wall_s,
            )
            kernel.subsystem_s.update(sorted(subsystem_totals.items()))
        else:
            kernel = KernelStats(
                mode="reference",
                total_ops=reference_ops,
                fast_path_ops=0,
                slow_path_ops=reference_ops - barrier_ops,
                barrier_ops=barrier_ops,
                sim_wall_s=sim_wall_s,
            )
        kernel_span.set(
            total_ops=kernel.total_ops,
            fast_path_ops=kernel.fast_path_ops,
            slow_path_ops=kernel.slow_path_ops,
            barrier_ops=kernel.barrier_ops,
        )

        execution_time = (
            max(core.stats.end_time_ps for core in cores) - measurement_start_ps
        )
        if self._core_operating_points is None:
            operating_points = [
                (config.frequency_hz, config.voltage) for _ in range(n_threads)
            ]
        else:
            operating_points = list(self._core_operating_points)
        result = SimulationResult(
            config=config,
            n_threads=n_threads,
            execution_time_ps=execution_time,
            core_stats=[core.stats for core in cores],
            coherence=self._controller.stats,
            l1_caches=self._l1s,
            l2=self._l2,
            bus=self._bus,
            memory_requests=self._memory.requests,
            lock_acquires=self._locks.acquires,
            lock_contended=self._locks.contended_acquires,
            barriers=barriers_seen,
            core_operating_points=operating_points,
            kernel=kernel,
        )
        _sample_window_channels(result)
        return result


def _sample_window_channels(result: SimulationResult) -> None:
    """Deposit one reading per ``sim.*`` channel at a window boundary.

    Kept outside the hot ``run_window`` body: it runs once per window,
    reads only *finished* counters, and writes nothing back into the
    simulation — which is the whole bitwise-identical-on/off contract.
    """
    sampler = get_sampler()
    if not sampler.enabled:
        return
    cpi = result.average_cpi
    sampler.sample("sim.ipc", 1.0 / cpi if cpi > 0 else 0.0)
    per_core_ipc = [
        stats.instructions_per_cycle(result.core_frequency(i))
        for i, stats in enumerate(result.core_stats)
    ]
    if per_core_ipc:
        sampler.sample("sim.ipc_min", min(per_core_ipc))
    coherence = result.coherence
    sampler.sample("sim.l1_miss_rate", coherence.l1_miss_rate())
    sampler.sample("sim.l2_miss_rate", coherence.l2_miss_rate())
    sampler.sample(
        "sim.bus_occupancy", result.bus.utilisation(result.execution_time_ps)
    )
    sampler.sample(
        "sim.bus_wait_fraction",
        result.bus.wait_fraction(result.execution_time_ps),
    )
    sampler.sample("sim.coherence_txns", float(coherence.total_transactions))
    sampler.sample("sim.memory_stall_fraction", result.memory_stall_fraction())
    sampler.sample("sim.frequency_ghz", result.core_frequency(0) / GIGA)
    sampler.sample("sim.voltage_v", result.core_voltage(0))
    if result.kernel is not None:
        sampler.sample("sim.fast_path_ratio", result.kernel.fast_path_ratio)
