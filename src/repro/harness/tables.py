"""Plain-text rendering of paper-style tables and series.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    formatted: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)
