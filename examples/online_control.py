#!/usr/bin/env python
"""Online power/thermal control: governors and activity migration.

The paper picks operating points offline (profile, solve, re-run).
This example shows the control loops a deployed chip would use instead,
built on the incremental :class:`~repro.sim.cmp.ChipSession`:

1. a **budget-chasing governor** walking the frequency ladder until chip
   power sits at the Scenario II budget — and converging onto the
   offline oracle's answer;
2. a **memory-slack governor** that slows the chip only while execution
   is memory-stall dominated;
3. **activity migration**: rotating a hot thread over idle cores to
   flatten the thermal peak.

Run:  python examples/online_control.py
"""

from repro.harness import (
    ExperimentContext,
    MemorySlackGovernor,
    PerformanceGovernor,
    compare_migration,
    render_table,
    run_governed,
    run_scenario2,
)
from repro.workloads import workload_by_name


def budget_governor(context: ExperimentContext) -> None:
    budget = 0.7 * context.calibration.max_operational_power_w
    model = workload_by_name("Cholesky")
    oracle = run_scenario2(context, [model], core_counts=(8,), budget_w=budget)[
        "Cholesky"
    ][0]
    governed = run_governed(
        context,
        model,
        8,
        PerformanceGovernor.for_context(context, budget_w=budget, step_hz=600e6),
    )
    print(
        render_table(
            ["window", "f (GHz)", "P (W)", "mem-stall"],
            [
                [w.index, w.frequency_hz / 1e9, w.power_w, w.memory_stall_fraction]
                for w in governed.windows
            ],
            title=f"Budget governor on Cholesky @ 8 cores (budget {budget:.1f} W)",
        )
    )
    print(
        f"offline oracle picked {oracle.frequency_hz / 1e9:.1f} GHz; the online\n"
        f"ladder converged to {governed.frequency_trajectory[-1] / 1e9:.1f} GHz "
        f"with average power {governed.average_power_w:.1f} W\n"
    )


def slack_governor(context: ExperimentContext) -> None:
    rows = []
    for app in ("Radix", "FMM"):
        governed = run_governed(
            context, workload_by_name(app), 4, MemorySlackGovernor.for_context(context)
        )
        rows.append(
            [
                app,
                " ".join(f"{f / 1e9:.1f}" for f in governed.frequency_trajectory),
                governed.average_power_w,
            ]
        )
    print(
        render_table(
            ["app", "frequency trajectory (GHz)", "avg P (W)"],
            rows,
            title="Memory-slack governor @ 4 cores",
        )
    )
    print(
        "Radix (memory-bound) is driven down the ladder; FMM stays at the\n"
        "top once its caches warm — frequency only matters when the chip\n"
        "is actually computing.\n"
    )


def migration(context: ExperimentContext) -> None:
    pinned, rotated = compare_migration(
        context, workload_by_name("FMM"), rotation_set=4
    )
    print(
        render_table(
            ["policy", "peak T (C)", "time (us)", "L1 miss"],
            [
                [r.policy, r.peak_temperature_c, r.total_time_s * 1e6, r.l1_miss_rate]
                for r in (pinned, rotated)
            ],
            title="Activity migration: one hot FMM thread, 4 candidate cores",
        )
    )
    print(
        "Rotation spreads the heat over four cores' silicon — a lower\n"
        "thermal peak bought with post-hop cold caches."
    )


def main() -> None:
    print("Building the experiment context (calibration microbenchmark)...\n")
    context = ExperimentContext(workload_scale=0.2)
    budget_governor(context)
    slack_governor(context)
    migration(context)


if __name__ == "__main__":
    main()
