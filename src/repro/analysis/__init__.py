"""Static invariant analysis for the repro tree (``repro check``).

Seven checker families guard the properties the reproduction's tests
assume but cannot economically re-verify on every run:

* **determinism** — simulation/model code must not read wall clocks,
  draw unseeded randomness, or iterate unordered collections where
  order reaches results (bitwise-identical reruns are a tier-1
  invariant); transitive DET-* findings follow the call graph to
  helpers defined outside the scoped trees;
* **units** — SI base units internally, with conversions through
  :mod:`repro.units` named constants only;
* **dimensions** — interprocedural dimensional analysis: physical
  units as exponent vectors propagated through arithmetic and return
  values (``power * time`` unifies with J; GHz + Hz is flagged);
* **hotpath** — functions marked ``# repro: hot`` stay allocation-
  and dispatch-free (the PR 2 fast-path contract);
* **picklability** — everything crossing the executor outcome channel
  or the result cache stays pickle-stable;
* **forksafety** — functions reachable from executor worker entry
  points must not touch module-level mutable state that diverges
  between the inline/pool/farm lanes;
* **suppressions** — inline ``# repro: allow[...]`` comments that no
  longer match a finding are themselves flagged (ALLOW-UNUSED).

The interprocedural passes ride on :mod:`repro.analysis.flow` — a
name-resolved call graph plus a worklist dataflow fixpoint.

Public API::

    from repro.analysis import AnalysisOptions, analyze_tree
    report = analyze_tree(AnalysisOptions(root=Path("src/repro")))
    for finding in report.findings:
        print(finding.location, finding.rule, finding.message)

See docs/ANALYSIS.md for every rule, the suppression syntax, and the
baseline workflow.
"""

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    baseline_from_document,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.changed import (
    ChangedLinesError,
    changed_lines,
    gate_findings,
    parse_diff,
)
from repro.analysis.findings import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    Rule,
)
from repro.analysis.index import ClassInfo, FunctionInfo, TreeIndex, build_index
from repro.analysis.runner import (
    REPORT_SCHEMA,
    RULE_IDS,
    RULES,
    AnalysisOptions,
    AnalysisReport,
    analyze_tree,
    default_baseline_path,
    format_text,
    rule_by_id,
    validate_report_document,
)
from repro.analysis.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    to_sarif,
    validate_sarif_document,
)
from repro.analysis.source import SourceError, SourceFile, load_source_file

__all__ = [
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "RULES",
    "RULE_IDS",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "ChangedLinesError",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "AnalysisOptions",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "ClassInfo",
    "Finding",
    "FunctionInfo",
    "Rule",
    "SourceError",
    "SourceFile",
    "TreeIndex",
    "analyze_tree",
    "baseline_from_document",
    "baseline_from_findings",
    "build_index",
    "changed_lines",
    "default_baseline_path",
    "format_text",
    "gate_findings",
    "load_baseline",
    "load_source_file",
    "parse_diff",
    "rule_by_id",
    "save_baseline",
    "to_sarif",
    "validate_report_document",
    "validate_sarif_document",
]
