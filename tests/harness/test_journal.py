"""Tests for the crash-safe sweep journal behind ``--resume``."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.journal import (
    JOURNAL_SCHEMA,
    FailedPointRow,
    JournalEntry,
    SweepJournal,
    journal_path,
    list_run_ids,
    load_journal,
    new_run_id,
)


def entry(key, status="ok", **kwargs):
    return JournalEntry(key=key, status=status, **kwargs)


class TestJournalEntry:
    def test_rejects_unknown_status(self):
        with pytest.raises(ConfigurationError, match="status"):
            JournalEntry(key="k", status="maybe")


class TestPaths:
    def test_journal_path_rejects_traversal(self):
        for bad in ("", "../x", "a/b", ".hidden"):
            with pytest.raises(ConfigurationError):
                journal_path("/tmp/cache", bad)

    def test_new_run_ids_embed_timestamp_and_pid(self):
        run_id = new_run_id()
        stamp, pid = run_id.rsplit("-", 1)
        assert stamp.endswith("Z")
        assert pid.isdigit()

    def test_list_run_ids_sorts_lexicographically(self, tmp_path):
        for run_id in ("20260102T000000Z-1", "20260101T000000Z-9"):
            SweepJournal(tmp_path, run_id).close()
        assert list_run_ids(tmp_path) == [
            "20260101T000000Z-9",
            "20260102T000000Z-1",
        ]

    def test_list_run_ids_empty_without_journal_dir(self, tmp_path):
        assert list_run_ids(tmp_path) == []


class TestRoundTrip:
    def test_recorded_entries_load_back(self, tmp_path):
        with SweepJournal(tmp_path, "run-a", command="fig1") as journal:
            journal.record(entry("k1", attempts=2, wall_s=0.5))
            journal.record(
                entry(
                    "k2",
                    status="failed",
                    error_type="WorkerCrash",
                    retryable=True,
                    attempts=3,
                )
            )
        header, entries = load_journal(journal.path)
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["command"] == "fig1"
        assert entries["k1"].attempts == 2
        assert entries["k2"].status == "failed"
        assert entries["k2"].retryable

    def test_later_entries_supersede_earlier_ones(self, tmp_path):
        with SweepJournal(tmp_path, "run-a") as journal:
            journal.record(entry("k", status="failed", retryable=True))
            journal.record(entry("k", status="ok", attempts=2))
        _, entries = load_journal(journal.path)
        assert entries["k"].status == "ok"

    def test_torn_tail_is_tolerated(self, tmp_path):
        with SweepJournal(tmp_path, "run-a") as journal:
            journal.record(entry("k1"))
        path = journal.path
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "status": "o')  # crash mid-write
        _, entries = load_journal(path)
        assert set(entries) == {"k1"}

    def test_rejects_missing_or_foreign_header(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="empty journal"):
            load_journal(path)
        path.write_text('{"schema": "weird"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unsupported"):
            load_journal(path)


class TestSweepJournal:
    def test_resume_requires_an_existing_journal(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no journal for run"):
            SweepJournal(tmp_path, "missing", resume=True)

    def test_resume_loads_completed_and_keeps_appending(self, tmp_path):
        with SweepJournal(tmp_path, "run-a", command="fig2") as journal:
            journal.record(entry("k1"))
        with SweepJournal(
            tmp_path, "run-a", command="fig2", resume=True
        ) as resumed:
            assert set(resumed.completed) == {"k1"}
            resumed.record(entry("k2"))
        _, entries = load_journal(resumed.path)
        assert set(entries) == {"k1", "k2"}

    def test_resume_refuses_a_different_command(self, tmp_path):
        SweepJournal(tmp_path, "run-a", command="fig1").close()
        with pytest.raises(ConfigurationError, match="refusing to resume"):
            SweepJournal(tmp_path, "run-a", command="fig3", resume=True)

    def test_fresh_run_uniquifies_a_colliding_id(self, tmp_path):
        first = SweepJournal(tmp_path, "run-a")
        first.close()
        second = SweepJournal(tmp_path, "run-a")
        second.close()
        assert second.run_id == "run-a-2"
        assert second.path != first.path

    def test_counts_and_failed_rows(self, tmp_path):
        with SweepJournal(tmp_path, "run-a") as journal:
            journal.record(entry("k1"))
            journal.record(
                entry(
                    "k2",
                    status="failed",
                    error_type="PointTimeout",
                    retryable=True,
                    attempts=4,
                )
            )
            assert journal.counts() == {"ok": 1, "failed": 1}
            rows = journal.failed_rows()
        assert rows == [
            FailedPointRow(
                key="k2",
                index=-1,
                error_type="PointTimeout",
                message="",
                attempts=4,
                retryable=True,
            )
        ]

    def test_record_flushes_immediately(self, tmp_path):
        journal = SweepJournal(tmp_path, "run-a")
        journal.record(entry("k1"))
        # Read back through a separate handle while the writer is open:
        # the WAL property (crash loses at most the in-flight point).
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[-1])["key"] == "k1"
        journal.close()

    def test_closed_journal_refuses_writes(self, tmp_path):
        journal = SweepJournal(tmp_path, "run-a")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            journal.record(entry("k1"))
