"""Quantify the paper's claim: analytical vs experimental agreement.

The paper validates its analytical model by eyeballing the simulation's
Figure 3 against Figure 1.  This harness does it numerically: feed each
application's *measured* nominal-efficiency curve into the analytical
Scenario I, predict the normalized power at every (app, N), and compare
against the experimental pipeline's measurement.  The result is a
per-point relative error and per-app/overall agreement statistics — the
reproduction's analogue of a model-validation table.

Systematic gaps are expected and informative: the analytical model
assumes system-wide DVFS and a constant activity factor, so it misses
the memory-gap speedup boost and the activity differences between
applications (Sections 2.2 and 4.1 call these out explicitly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.efficiency import MeasuredEfficiency
from repro.core.powermodel import AnalyticalChipModel
from repro.core.scenario1 import PowerOptimizationScenario
from repro.errors import ConfigurationError, InfeasibleOperatingPoint
from repro.harness.scenario1 import Scenario1Row
from repro.tech.technology import TechnologyNode, NODE_65NM


@dataclass(frozen=True)
class AgreementPoint:
    """Analytical prediction vs experimental measurement at one (app, N)."""

    app: str
    n: int
    eps_n: float
    predicted_power: float
    measured_power: float

    @property
    def relative_error(self) -> float:
        """(measured - predicted) / measured."""
        return (self.measured_power - self.predicted_power) / self.measured_power

    @property
    def log_ratio(self) -> float:
        """log(measured / predicted) — symmetric agreement measure."""
        return math.log(self.measured_power / self.predicted_power)


@dataclass(frozen=True)
class AgreementSummary:
    """Aggregate agreement over a set of points."""

    points: tuple

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("no agreement points")

    @property
    def mean_abs_log_ratio(self) -> float:
        """Mean |log(measured/predicted)|; 0.69 means a factor of 2."""
        return sum(abs(p.log_ratio) for p in self.points) / len(self.points)

    @property
    def worst_factor(self) -> float:
        """Largest measured/predicted discrepancy as a >= 1 factor."""
        return max(math.exp(abs(p.log_ratio)) for p in self.points)

    def within_factor(self, factor: float) -> float:
        """Fraction of points agreeing within the given factor."""
        if factor < 1.0:
            raise ConfigurationError("factor must be >= 1")
        bound = math.log(factor)
        inside = sum(1 for p in self.points if abs(p.log_ratio) <= bound)
        return inside / len(self.points)


def compare_scenario1(
    experimental: Dict[str, List[Scenario1Row]],
    tech: TechnologyNode = NODE_65NM,
    vf_table=None,
) -> AgreementSummary:
    """Predict every experimental Figure 3 power point analytically.

    ``experimental`` is the output of
    :func:`repro.harness.scenario1.run_scenario1`.  Pass the harness's
    ``context.vf_table`` as ``vf_table`` so both models use the same
    operating points; otherwise the analytical side's deeper alpha-law
    voltages predict systematically larger savings.
    """
    if vf_table is None:
        from repro.tech.technology import VFTable

        vf_table = VFTable.linear(tech, f_min=200e6, f_max=tech.f_nominal, step=200e6)
    scenario = PowerOptimizationScenario(
        AnalyticalChipModel(tech), vf_table=vf_table
    )
    points: List[AgreementPoint] = []
    for app, rows in experimental.items():
        table = {
            row.n: row.nominal_efficiency for row in rows if row.n > 1
        }
        if not table:
            continue
        efficiency = MeasuredEfficiency(table)
        for row in rows:
            if row.n == 1:
                continue
            try:
                predicted = scenario.solve(row.n, efficiency(row.n)).normalized_power
            except InfeasibleOperatingPoint:
                continue
            points.append(
                AgreementPoint(
                    app=app,
                    n=row.n,
                    eps_n=row.nominal_efficiency,
                    predicted_power=predicted,
                    measured_power=row.normalized_power,
                )
            )
    return AgreementSummary(points=tuple(points))
