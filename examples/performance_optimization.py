#!/usr/bin/env python
"""Experimental Scenario II (Figure 4): speedup under a 1-core power budget.

For FMM, Cholesky, and Radix (the paper's three case studies, in
descending order of computational intensity), finds the best operating
point per core count under the microbenchmark-derived single-core power
budget and compares nominal versus actual speedup.

Run:  python examples/performance_optimization.py
"""

from repro.harness import ExperimentContext, render_table, run_scenario2
from repro.workloads import workload_by_name

APPS = ("FMM", "Cholesky", "Radix")
CORE_COUNTS = (1, 2, 4, 8, 12, 16)


def main() -> None:
    print("Building the experiment context (runs the calibration ubench)...")
    context = ExperimentContext(workload_scale=0.25)
    budget = context.calibration.max_operational_power_w
    print(f"  power budget (single core at max): {budget:.1f} W\n")

    models = [workload_by_name(app) for app in APPS]
    results = run_scenario2(context, models, core_counts=CORE_COUNTS)

    rows = []
    for app in APPS:
        for r in results[app]:
            rows.append(
                [
                    app,
                    r.n,
                    r.nominal_speedup,
                    r.actual_speedup,
                    f"{(r.nominal_speedup - r.actual_speedup) / r.nominal_speedup:.0%}",
                    r.frequency_hz / 1e9,
                    r.power_w,
                    "yes" if r.runs_at_nominal else "no",
                ]
            )
    print(
        render_table(
            ["app", "N", "nominal", "actual", "gap", "f (GHz)", "P (W)", "at-nominal"],
            rows,
            title="Figure 4: nominal vs actual speedup under the power budget",
        )
    )

    print(
        "\nThe paper's reading holds: the gap is widest for the\n"
        "compute-intensive FMM, intermediate for Cholesky, and Radix —\n"
        "power-thrifty because it stalls on memory — runs at nominal V/f\n"
        "(actual == nominal) until around eight cores."
    )


if __name__ == "__main__":
    main()
