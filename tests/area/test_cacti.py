"""Tests for the CACTI-style area/time/energy model."""


import pytest
from hypothesis import given, strategies as st

from repro.area import CacheGeometry, CactiModel, CMPAreaModel
from repro.area.cacti import L1_GEOMETRY, L2_GEOMETRY
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_table1_geometries(self):
        assert L1_GEOMETRY.capacity_bytes == 64 * 1024
        assert L1_GEOMETRY.line_bytes == 64
        assert L1_GEOMETRY.associativity == 2
        assert L2_GEOMETRY.capacity_bytes == 4 * 1024 * 1024
        assert L2_GEOMETRY.associativity == 8

    def test_n_sets(self):
        assert L1_GEOMETRY.n_sets == 512
        assert L2_GEOMETRY.n_sets == 4096

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(capacity_bytes=0, line_bytes=64, associativity=2)
        with pytest.raises(ConfigurationError):
            CacheGeometry(capacity_bytes=1000, line_bytes=64, associativity=2)


class TestCactiModel:
    def test_table1_latencies_at_65nm(self):
        # Table 1: L1 2-cycle RT, L2 12-cycle RT at 3.2 GHz.
        model = CactiModel(65.0)
        assert model.access_cycles(L1_GEOMETRY, 3.2e9) == 2
        assert model.access_cycles(L2_GEOMETRY, 3.2e9) == 12

    def test_latency_scales_with_feature_size(self):
        slow = CactiModel(130.0)
        fast = CactiModel(65.0)
        assert slow.access_time_ns(L1_GEOMETRY) == pytest.approx(
            2.0 * fast.access_time_ns(L1_GEOMETRY)
        )

    def test_bigger_cache_is_slower(self):
        model = CactiModel(65.0)
        assert model.access_time_ns(L2_GEOMETRY) > model.access_time_ns(L1_GEOMETRY)

    def test_area_linear_in_capacity(self):
        model = CactiModel(65.0)
        small = CacheGeometry(64 * 1024, 64, 2)
        big = CacheGeometry(256 * 1024, 64, 2)
        assert model.area_mm2(big) == pytest.approx(4 * model.area_mm2(small))

    def test_energy_scales_with_voltage_squared(self):
        model = CactiModel(65.0)
        e_full = model.energy_per_access_nj(L1_GEOMETRY, 1.1)
        e_half = model.energy_per_access_nj(L1_GEOMETRY, 0.55)
        assert e_half == pytest.approx(e_full / 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CactiModel(-1.0)
        with pytest.raises(ConfigurationError):
            CactiModel(65.0).access_cycles(L1_GEOMETRY, 0.0)
        with pytest.raises(ConfigurationError):
            CactiModel(65.0).energy_per_access_nj(L1_GEOMETRY, 0.0)

    @given(st.floats(min_value=32.0, max_value=350.0))
    def test_positive_outputs(self, feature_nm):
        model = CactiModel(feature_nm)
        assert model.area_mm2(L1_GEOMETRY) > 0
        assert model.access_time_ns(L1_GEOMETRY) > 0


class TestCMPAreaModel:
    def test_paper_die_area(self):
        # Table 1: 244.5 mm^2 (15.6 mm x 15.6 mm) for the 16-way 65 nm CMP.
        model = CMPAreaModel()
        assert model.die_area_mm2() == pytest.approx(244.5, rel=0.01)
        assert model.die_side_mm() == pytest.approx(15.6, rel=0.01)

    def test_area_grows_with_cores(self):
        assert CMPAreaModel(n_cores=32).die_area_mm2() > CMPAreaModel(
            n_cores=16
        ).die_area_mm2()

    def test_core_area_scaled_from_ev6(self):
        model = CMPAreaModel()
        # A 350 nm -> 65 nm quadratic shrink of a ~209 mm^2 die: ~7.2 mm^2.
        assert 5.0 < model.core_area_mm2() < 10.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CMPAreaModel(n_cores=0)
        with pytest.raises(ConfigurationError):
            CMPAreaModel(overhead_fraction=1.0)
