"""Tests for the adaptive design-space optimizer.

Three layers:

* **search-engine properties** (hypothesis) — for every monotone
  feasibility curve and every strictly unimodal metric curve, the
  refined search picks exactly the index the exhaustive pick rule
  picks, while evaluating a bounded subset of the ladder;
* **differential equivalence** — on the real simulator, the adaptive
  campaign returns bitwise the same optimum as ``exhaustive=True`` for
  every SPLASH-2 application under both boundary objectives, with
  materially fewer grid evaluations;
* **bugfix regressions** — the nominal-frequency field migration, the
  duplicated overclocking baseline run, and the quarantined scenario-2
  profile point.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.harness import (
    ExperimentContext,
    ResultCache,
    SweepExecutor,
    load_results,
    run_optimizer,
    run_scenario2,
    save_results,
)
from repro.harness.executor import RetryPolicy
from repro.harness.faults import ALWAYS, FaultPlan, FaultSpec
from repro.harness.optimizer import (
    DEFAULT_STEP_HZ,
    OptimizerRow,
    _BoundarySearch,
    _UnimodalSearch,
    _coarse_indices,
    _default_stride,
    frequency_ladder,
    objective_by_name,
    pick_boundary,
)
from repro.harness.scenario2 import run_overclocking_study
from repro.harness.schema import SCHEMA_VERSION
from repro.workloads import SPLASH2, workload_by_name

# ---------------------------------------------------------------------------
# Search-engine properties (no simulator involved).
# ---------------------------------------------------------------------------


def drive(search, values):
    """Run a search to completion against a lookup table of values."""
    evaluated = set()
    while not search.done:
        frontier = search.frontier()
        assert frontier, "a live search must always want another point"
        for index in frontier:
            assert index not in evaluated, "no point is requested twice"
            evaluated.add(index)
            search.known[index] = values[index]
        search.advance()
    return evaluated


monotone_cases = st.tuples(
    st.integers(min_value=1, max_value=48),  # ladder length
    st.integers(min_value=0, max_value=48),  # boundary position
    st.booleans(),  # feasible_low
)


@given(monotone_cases)
@settings(max_examples=200, deadline=None)
def test_boundary_search_matches_exhaustive_pick(case):
    n, boundary, feasible_low = case
    if feasible_low:
        flags = [i < boundary for i in range(n)]
    else:
        flags = [i >= boundary for i in range(n)]
    search = _BoundarySearch(n, feasible_low, _default_stride(n))
    evaluated = drive(search, flags)
    expected, _bracket = pick_boundary(flags, feasible_low)
    assert search.result == expected
    # Coarse ladder plus one bisection chain: the search never needs
    # more than the round-0 probes and log2(stride) midpoints.
    stride = _default_stride(n)
    bound = len(_coarse_indices(n, stride)) + max(1, stride).bit_length()
    assert len(evaluated) <= bound


@given(monotone_cases)
@settings(max_examples=100, deadline=None)
def test_boundary_search_bracket_straddles_the_flip(case):
    n, boundary, feasible_low = case
    if feasible_low:
        flags = [i < boundary for i in range(n)]
    else:
        flags = [i >= boundary for i in range(n)]
    search = _BoundarySearch(n, feasible_low, _default_stride(n))
    drive(search, flags)
    _expected, bracket = pick_boundary(flags, feasible_low)
    if bracket is not None:
        assert search.boundary == bracket
        lo, hi = search.boundary
        assert flags[lo] != flags[hi]


unimodal_cases = st.tuples(
    st.integers(min_value=1, max_value=48),  # ladder length
    st.integers(min_value=0, max_value=47),  # minimum position (clamped)
    st.floats(min_value=0.1, max_value=5.0),  # left slope
    st.floats(min_value=0.1, max_value=5.0),  # right slope
)


@given(unimodal_cases)
@settings(max_examples=200, deadline=None)
def test_unimodal_search_finds_the_strict_minimum(case):
    n, minimum, left, right = case
    minimum = min(minimum, n - 1)
    values = [
        (minimum - i) * left if i <= minimum else (i - minimum) * right
        for i in range(n)
    ]
    search = _UnimodalSearch(n, _default_stride(n))
    evaluated = drive(search, values)
    expected = min(range(n), key=lambda i: (values[i], i))
    assert search.result == expected
    assert len(evaluated) <= n


def test_default_stride_halves_cleanly():
    assert _default_stride(16) == 8
    assert _default_stride(17) == 16
    assert _default_stride(2) == 1
    assert _default_stride(1) == 1


def test_coarse_indices_include_both_endpoints():
    assert _coarse_indices(16, 8) == [0, 8, 15]
    assert _coarse_indices(5, 2) == [0, 2, 4]
    assert _coarse_indices(1, 1) == [0]


def test_pick_boundary_nothing_feasible():
    assert pick_boundary([False, False, False], True) == (None, None)


def test_pick_boundary_prefix_and_suffix():
    assert pick_boundary([True, True, False], True) == (1, (1, 2))
    assert pick_boundary([False, True, True], False) == (1, (0, 1))
    assert pick_boundary([True, True], True) == (1, None)


def test_objective_by_name_rejects_unknown():
    with pytest.raises(ConfigurationError, match="unknown objective"):
        objective_by_name("fastest")


# ---------------------------------------------------------------------------
# Differential equivalence on the real simulator.
# ---------------------------------------------------------------------------

CORE_COUNTS = (1, 16)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.03)


@pytest.fixture(scope="module")
def shared_executor(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("optimizer-cache"))
    return SweepExecutor(cache=cache)


@pytest.mark.parametrize("objective", ["speedup-budget", "power-iso"])
def test_adaptive_matches_exhaustive_for_all_workloads(
    context, shared_executor, objective
):
    exhaustive = run_optimizer(
        context,
        SPLASH2,
        objective,
        core_counts=CORE_COUNTS,
        executor=shared_executor,
        exhaustive=True,
    )
    adaptive = run_optimizer(
        context,
        SPLASH2,
        objective,
        core_counts=CORE_COUNTS,
        executor=shared_executor,
    )
    # Bitwise identity of every chosen optimum, for every application.
    assert [r.app for r in adaptive.rows] == [r.app for r in exhaustive.rows]
    for got, want in zip(adaptive.rows, exhaustive.rows):
        assert got.frequency_hz == want.frequency_hz
        assert got.voltage == want.voltage
        assert got.execution_time_ps == want.execution_time_ps
        assert got.total_power_w == want.total_power_w
        assert got.speedup == want.speedup
        assert got.metric == want.metric
        assert got.feasible == want.feasible
    # ... at a fraction of the simulations (the issue's <= 50% gate).
    assert adaptive.evaluations <= exhaustive.evaluations / 2
    assert not adaptive.skipped


def test_adaptive_matches_exhaustive_for_edp(context, shared_executor):
    models = [workload_by_name(app) for app in ("FMM", "Radix", "Cholesky")]
    exhaustive = run_optimizer(
        context, models, "edp", core_counts=(4,),
        executor=shared_executor, exhaustive=True,
    )
    adaptive = run_optimizer(
        context, models, "edp", core_counts=(4,), executor=shared_executor
    )
    assert [(r.app, r.frequency_hz, r.metric) for r in adaptive.rows] == [
        (r.app, r.frequency_hz, r.metric) for r in exhaustive.rows
    ]


def test_interpolated_boundary_within_one_grid_step(context, shared_executor):
    campaign = run_optimizer(
        context,
        SPLASH2,
        "speedup-budget",
        core_counts=CORE_COUNTS,
        executor=shared_executor,
    )
    ladder = frequency_ladder(context)
    for row in campaign.rows:
        assert abs(row.f_interpolated_hz - row.frequency_hz) <= DEFAULT_STEP_HZ
        assert ladder[0] <= row.f_interpolated_hz <= ladder[-1]
        assert not math.isnan(row.f_interpolated_hz)


def test_warm_cache_repeats_without_simulating(context, shared_executor):
    first = run_optimizer(
        context,
        SPLASH2,
        "speedup-budget",
        core_counts=CORE_COUNTS,
        executor=shared_executor,
    )
    second = run_optimizer(
        context,
        SPLASH2,
        "speedup-budget",
        core_counts=CORE_COUNTS,
        executor=shared_executor,
    )
    assert second.rows == first.rows
    assert second.evaluations == first.evaluations
    assert second.cold_evaluations == 0
    assert second.cache_hits == second.evaluations


def test_adaptive_agrees_with_the_scenario2_pipeline(context, shared_executor):
    models = [workload_by_name("FMM")]
    fig4 = run_scenario2(
        context, models, core_counts=CORE_COUNTS, executor=shared_executor
    )["FMM"]
    campaign = run_optimizer(
        context,
        models,
        "speedup-budget",
        core_counts=CORE_COUNTS,
        executor=shared_executor,
    )
    assert len(campaign.rows) == len(fig4)
    for opt, row in zip(campaign.rows, sorted(fig4, key=lambda r: r.n)):
        assert opt.n == row.n
        assert opt.frequency_hz == row.frequency_hz
        assert opt.voltage == row.voltage
        assert opt.speedup == row.actual_speedup


def test_campaign_accounting_is_consistent(context, shared_executor):
    campaign = run_optimizer(
        context,
        [workload_by_name("LU")],
        "speedup-budget",
        core_counts=(1, 4),
        executor=shared_executor,
    )
    assert campaign.evaluations == (
        campaign.cold_evaluations + campaign.cache_hits
    )
    assert campaign.exhaustive_evaluations == len(
        frequency_ladder(context)
    ) * len(campaign.rows)
    assert campaign.simulations_saved >= 0
    assert 0.0 < campaign.evaluation_ratio <= 1.0
    assert "speedup-budget" in campaign.summary()
    for row in campaign.rows:
        assert row.energy_j > 0.0


def test_optimizer_rows_round_trip_through_the_store(
    context, shared_executor, tmp_path
):
    campaign = run_optimizer(
        context,
        [workload_by_name("Radix")],
        "power-iso",
        core_counts=(1,),
        executor=shared_executor,
    )
    path = tmp_path / "optimizer.json"
    save_results({"optimizer": campaign.rows}, path)
    loaded = load_results(path)["optimizer"]
    assert loaded == campaign.rows
    assert all(isinstance(row, OptimizerRow) for row in loaded)


# ---------------------------------------------------------------------------
# Bugfix regressions.
# ---------------------------------------------------------------------------


def test_old_store_rows_migrate_the_nominal_frequency(tmp_path):
    """Rows stored before ``f_nominal_hz`` existed load with 3.2 GHz."""
    scenario2 = {
        "app": "FMM",
        "n": 4,
        "nominal_speedup": 2.0,
        "actual_speedup": 1.8,
        "frequency_hz": 2.6e9,
        "voltage": 1.002,
        "power_w": 15.0,
        "budget_w": 17.0,
    }
    overclock = {
        "app": "Radix",
        "n": 2,
        "baseline_speedup": 1.9,
        "overclocked_speedup": 2.0,
        "overclock_frequency_hz": 3.6e9,
        "power_w": 14.0,
        "budget_w": 17.0,
    }
    path = tmp_path / "old.json"
    path.write_text(
        json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "groups": {
                    "scenario2": [{"type": "scenario2", "data": scenario2}],
                    "overclock": [{"type": "overclock", "data": overclock}],
                },
            }
        ),
        encoding="utf-8",
    )
    loaded = load_results(path)
    s2 = loaded["scenario2"][0]
    oc = loaded["overclock"][0]
    assert s2.f_nominal_hz == 3.2e9
    assert not s2.runs_at_nominal
    assert oc.f_nominal_hz == 3.2e9
    assert oc.clock_gain == pytest.approx(3.6e9 / 3.2e9)


def test_overclocking_study_does_not_rerun_the_baseline(context):
    """The nominal-frequency baseline simulates exactly once.

    The study needs the 1-core and N-core nominal profiles plus one
    baseline measurement; with a budget so tight no boost fits, nothing
    else goes through ``context.run``.  The historical bug re-simulated
    the baseline a second time when every boosted step busted the
    budget.
    """
    model = workload_by_name("Radix")
    calls = []
    original = context.run

    def counting_run(*args, **kwargs):
        calls.append((args, kwargs))
        return original(*args, **kwargs)

    context.run = counting_run
    try:
        row = run_overclocking_study(context, model, 2, budget_w=0.001)
    finally:
        del context.run
    assert row.overclock_frequency_hz == context.f_nominal
    assert row.clock_gain == 1.0
    assert len(calls) == 3  # profile n=1, profile n=2, baseline — no rerun


def test_scenario2_skips_an_app_whose_baseline_is_quarantined(capsys):
    """A permanently failing 1-core profile degrades, not crashes.

    Stage 1 of ``run_scenario2`` profiles ``sorted({1, *counts})`` per
    application, so index 0 is the first model's 1-core point; a
    permanent fault there must skip that application with a
    ``[quarantine]`` notice while the campaign completes.
    """
    context = ExperimentContext(workload_scale=0.03)
    plan = FaultPlan(
        faults=((0, FaultSpec(kind="raise", failing_attempts=ALWAYS)),)
    )
    executor = SweepExecutor(
        retry=RetryPolicy(
            max_retries=1, backoff_base_s=0.0, backoff_max_s=0.0
        ),
        fault_plan=plan,
    )
    results = run_scenario2(
        context,
        [workload_by_name("FMM")],
        core_counts=(2,),
        executor=executor,
    )
    assert results == {"FMM": []}
    assert "[quarantine] FMM" in capsys.readouterr().err
    assert executor.failed
    from repro.harness.store import failed_point_rows

    rows = failed_point_rows(executor.failed)
    assert rows and rows[0].retryable
