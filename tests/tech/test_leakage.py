"""Tests for the physical leakage model and the Eq. 3 curve fit."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.tech import (
    NODE_130NM,
    NODE_65NM,
    LeakageParameters,
    PhysicalLeakageModel,
    default_leakage_multiplier,
    fit_leakage_curve,
)
from repro.units import ROOM_TEMPERATURE_K, celsius_to_kelvin


@pytest.fixture(scope="module")
def model_65():
    return PhysicalLeakageModel(NODE_65NM)


@pytest.fixture(scope="module")
def fit_65():
    return default_leakage_multiplier(NODE_65NM)


@pytest.fixture(scope="module")
def fit_130():
    return default_leakage_multiplier(NODE_130NM)


class TestPhysicalLeakageModel:
    def test_normalised_at_reference_point(self, model_65):
        value = model_65.relative_current(NODE_65NM.vdd_nominal, ROOM_TEMPERATURE_K)
        assert value == pytest.approx(1.0)

    def test_increases_with_temperature(self, model_65):
        v = NODE_65NM.vdd_nominal
        temps = [celsius_to_kelvin(t) for t in (25, 50, 75, 100)]
        values = [model_65.relative_current(v, t) for t in temps]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_increases_with_voltage(self, model_65):
        t = celsius_to_kelvin(60)
        voltages = [NODE_65NM.v_min, 0.8, 1.0, NODE_65NM.vdd_nominal]
        values = [model_65.relative_current(v, t) for v in voltages]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_leakage_roughly_doubles_per_25k(self, model_65):
        # The experimental power model assumes an exponential
        # temperature dependence; check the physical model's slope is in
        # the conventional doubles-per-20-to-40-K band.
        v = NODE_65NM.vdd_nominal
        ratio = model_65.relative_current(v, celsius_to_kelvin(75)) / (
            model_65.relative_current(v, celsius_to_kelvin(50))
        )
        assert 1.4 < ratio < 2.6

    def test_rejects_nonpositive_voltage(self, model_65):
        with pytest.raises(ConfigurationError):
            model_65.relative_current(0.0, ROOM_TEMPERATURE_K)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LeakageParameters(gate_fraction_ref=1.5)
        with pytest.raises(ConfigurationError):
            LeakageParameters(subthreshold_slope_factor=-1.0)

    def test_gate_fraction_zero_is_pure_subthreshold(self):
        params = LeakageParameters(gate_fraction_ref=0.0)
        model = PhysicalLeakageModel(NODE_65NM, params)
        # Pure subthreshold still normalises and stays positive.
        assert model.relative_current(0.8, celsius_to_kelvin(50)) > 0


class TestLeakageFit:
    def test_fit_error_within_paper_band(self, fit_130, fit_65):
        # The paper validates its Eq. 3 fit to 9.5 % (130 nm) and 7.5 %
        # (65 nm) max error against HSpice; our software stand-in should
        # land in the same ballpark.
        assert fit_130.max_error < 0.10
        assert fit_65.max_error < 0.10
        assert fit_130.mean_error < 0.03
        assert fit_65.mean_error < 0.03

    def test_normalised_at_reference_point(self, fit_65):
        assert fit_65.multiplier(
            NODE_65NM.vdd_nominal, ROOM_TEMPERATURE_K
        ) == pytest.approx(1.0)

    def test_tracks_physical_model(self, model_65, fit_65):
        for v in (NODE_65NM.v_min, 0.8, NODE_65NM.vdd_nominal):
            for t_c in (30, 60, 100):
                t = celsius_to_kelvin(t_c)
                h_true = model_65.relative_current(v, t)
                h_fit = fit_65.multiplier(v, t)
                assert abs(h_fit - h_true) / h_true < 0.12

    def test_callable_protocol(self, fit_65):
        assert fit_65(1.0, celsius_to_kelvin(50)) == fit_65.multiplier(
            1.0, celsius_to_kelvin(50)
        )

    def test_monotone_in_temperature(self, fit_65):
        values = [
            fit_65.multiplier(0.9, celsius_to_kelvin(t)) for t in range(30, 111, 10)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    @given(
        v=st.floats(min_value=0.62, max_value=1.1),
        t_c=st.floats(min_value=30.0, max_value=110.0),
    )
    @settings(max_examples=50)
    def test_fit_positive_everywhere(self, fit_65, v, t_c):
        assert fit_65.multiplier(v, celsius_to_kelvin(t_c)) > 0

    def test_custom_grid_fit(self):
        model = PhysicalLeakageModel(NODE_130NM)
        fit = fit_leakage_curve(
            model,
            v_grid=[0.7, 0.9, 1.1, 1.3],
            t_grid=[celsius_to_kelvin(t) for t in (40, 70, 100)],
        )
        assert fit.max_error < 0.2

    def test_default_fit_cached(self):
        assert default_leakage_multiplier(NODE_65NM) is default_leakage_multiplier(
            NODE_65NM
        )
