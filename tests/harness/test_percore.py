"""Tests for the per-core DVFS extension."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentContext, plan_core_frequencies, run_percore_dvfs
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.08)


class TestSimulatorSupport:
    def test_per_core_clocks_change_compute_speed(self):
        chip = ChipMultiprocessor(CMPConfig())
        threads = [
            [(OP_COMPUTE, 10_000), (OP_BARRIER, 0)],
            [(OP_COMPUTE, 10_000), (OP_BARRIER, 0)],
        ]
        result = chip.run(
            threads,
            core_operating_points=[(3.2e9, 1.1), (1.6e9, 0.85)],
        )
        fast, slow = result.core_stats
        # The slow core's burst takes twice as long.
        assert slow.busy_ps == pytest.approx(2 * fast.busy_ps, rel=0.01)
        # The fast core waits at the barrier for the slow one.
        assert fast.sync_wait_ps > 0

    def test_operating_points_recorded(self):
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [[(OP_COMPUTE, 100)], [(OP_COMPUTE, 100)]],
            core_operating_points=[(3.2e9, 1.1), (1.0e9, 0.75)],
        )
        assert result.core_frequency(1) == 1.0e9
        assert result.core_voltage(1) == 0.75

    def test_uniform_defaults(self):
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run([[(OP_COMPUTE, 100)]])
        assert result.core_frequency(0) == result.config.frequency_hz
        assert result.core_voltage(0) == result.config.voltage

    def test_validation(self):
        chip = ChipMultiprocessor(CMPConfig())
        with pytest.raises(ConfigurationError):
            chip.run(
                [[(OP_COMPUTE, 1)]],
                core_operating_points=[(3.2e9, 1.1), (1e9, 0.8)],  # wrong count
            )
        with pytest.raises(ConfigurationError):
            chip.run([[(OP_COMPUTE, 1)]], core_operating_points=[(0.0, 1.1)])

    def test_per_core_voltage_scales_energy(self):
        from repro.power import WattchModel

        wattch = WattchModel()
        chip = ChipMultiprocessor(CMPConfig())
        def threads():
            return [[(OP_COMPUTE, 10_000)], [(OP_COMPUTE, 10_000)]]

        uniform = chip.run(
            threads(), core_operating_points=[(3.2e9, 1.1), (3.2e9, 1.1)]
        )
        lowered = ChipMultiprocessor(CMPConfig()).run(
            threads(), core_operating_points=[(3.2e9, 1.1), (3.2e9, 0.78)]
        )
        assert wattch.core_dynamic_energy_j(
            lowered, 1
        ) < wattch.core_dynamic_energy_j(uniform, 1)
        # Core 0's energy is unaffected by core 1's voltage.
        assert wattch.core_dynamic_energy_j(lowered, 0) == pytest.approx(
            wattch.core_dynamic_energy_j(uniform, 0), rel=0.02
        )


class TestPlanning:
    def test_slowest_core_keeps_nominal(self, context):
        uniform, _ = context.run(workload_by_name("Volrend"), 4)
        freqs = plan_core_frequencies(context, uniform)
        works = [s.total_active_ps for s in uniform.core_stats]
        assert freqs[works.index(max(works))] == pytest.approx(context.f_nominal)

    def test_frequencies_on_grid_and_in_range(self, context):
        uniform, _ = context.run(workload_by_name("Cholesky"), 4)
        for f in plan_core_frequencies(context, uniform):
            assert context.f_min - 1 <= f <= context.f_nominal + 1
            assert round(f / 200e6) == pytest.approx(f / 200e6)

    def test_guard_raises_frequencies(self, context):
        uniform, _ = context.run(workload_by_name("Cholesky"), 4)
        relaxed = plan_core_frequencies(context, uniform, guard=1.0)
        guarded = plan_core_frequencies(context, uniform, guard=1.15)
        assert all(g >= r for g, r in zip(guarded, relaxed))
        with pytest.raises(ConfigurationError):
            plan_core_frequencies(context, uniform, guard=0.9)


class TestPolicy:
    def test_imbalanced_app_saves_energy(self, context):
        result = run_percore_dvfs(context, workload_by_name("Cholesky"), 4)
        assert result.energy_saving > 0.0
        assert result.slowdown < 1.4

    def test_needs_multiple_threads(self, context):
        with pytest.raises(ConfigurationError):
            run_percore_dvfs(context, workload_by_name("Cholesky"), 1)

    def test_result_metrics(self, context):
        result = run_percore_dvfs(context, workload_by_name("Volrend"), 4)
        assert result.app == "Volrend"
        assert len(result.core_frequencies_hz) == 4
        assert result.uniform_energy_j > 0
        assert result.percore_energy_j > 0
