"""Figure 3 — experimental Scenario I over the SPLASH-2 suite.

Regenerates all five panels of the paper's Figure 3 for the twelve
applications at N in {1, 2, 4, 8, 16}: nominal parallel efficiency,
actual speedup, normalized power consumption, normalized power density,
and average operating temperature.

Shape assertions (the paper's observations in Section 4.1):

* nominal efficiency falls with N within each application;
* actual speedups are >= ~1 (all configurations at least meet the 1-core
  target) with memory-bound applications overshooting the most;
* power consumption drops below 1 given sufficient efficiency, and for
  poorly-scaling applications the savings stagnate or recede at high N;
* power density collapses by roughly an order of magnitude at N = 16;
* average temperature decreases monotonically toward ambient, with the
  power-hungry applications (FMM, LU) seeing the largest drops.
"""

import pytest

from repro.harness import render_table, run_scenario1
from repro.workloads import SPLASH2


@pytest.fixture(scope="module")
def scenario1_results(experiment_context):
    return run_scenario1(experiment_context, SPLASH2)


def test_figure3_pipeline(benchmark, experiment_context):
    """Time one application's full Scenario I pipeline (FMM)."""
    from repro.workloads import workload_by_name

    rows = benchmark.pedantic(
        lambda: run_scenario1(experiment_context, [workload_by_name("FMM")]),
        rounds=1,
        iterations=1,
    )
    assert "FMM" in rows


def test_figure3_all_panels(benchmark, scenario1_results):
    benchmark.pedantic(lambda: scenario1_results, rounds=1, iterations=1)
    print()
    table_rows = []
    for app, rows in scenario1_results.items():
        for r in rows:
            table_rows.append(
                [
                    app,
                    r.n,
                    r.nominal_efficiency,
                    r.actual_speedup,
                    r.normalized_power,
                    r.normalized_power_density,
                    r.average_temperature_c,
                ]
            )
    print(
        render_table(
            ["app", "N", "eps_n", "speedup", "norm-P", "norm-density", "T-avg(C)"],
            table_rows,
            title="Figure 3: experimental Scenario I (all five panels)",
        )
    )

    for app, rows in scenario1_results.items():
        by_n = {r.n: r for r in rows}
        ns = sorted(by_n)
        # Panel 1: efficiency falls with N.
        effs = [by_n[n].nominal_efficiency for n in ns if n > 1]
        assert all(b <= a + 0.05 for a, b in zip(effs, effs[1:])), app
        # Panel 2: every configuration at least roughly meets the target.
        for n in ns:
            assert by_n[n].actual_speedup >= 0.9, (app, n)
        # Panel 3: parallel configurations save power.
        assert min(by_n[n].normalized_power for n in ns if n > 1) < 1.0, app
        # Panel 4: density collapses at N = 16.
        if 16 in by_n:
            assert by_n[16].normalized_power_density < 0.15, app
        # Panel 5: temperature declines toward (never below) ambient.
        temps = [by_n[n].average_temperature_c for n in ns]
        assert all(b <= a + 0.5 for a, b in zip(temps, temps[1:])), app
        assert all(t >= 44.9 for t in temps), app


def test_figure3_memory_bound_speedup_boost(benchmark, scenario1_results):
    """Memory-bound codes overshoot the iso-performance target most."""
    benchmark.pedantic(lambda: scenario1_results, rounds=1, iterations=1)

    def peak_speedup(app):
        return max(r.actual_speedup for r in scenario1_results[app])

    assert peak_speedup("Ocean") > peak_speedup("FMM")
    assert peak_speedup("Radix") > peak_speedup("FMM")


def test_figure3_power_recedes_for_poor_scalers(benchmark, scenario1_results):
    """Diminishing efficiency eventually erodes the power savings."""
    benchmark.pedantic(lambda: scenario1_results, rounds=1, iterations=1)
    cholesky = {r.n: r.normalized_power for r in scenario1_results["Cholesky"]}
    assert cholesky[16] > min(cholesky.values())


def test_figure3_analytical_agreement(benchmark, scenario1_results, experiment_context):
    """Quantify the paper's validation claim: feeding the measured
    efficiency curves into the analytical model predicts the simulated
    power points within a small factor (same V/f table on both sides)."""
    from repro.harness import compare_scenario1

    summary = benchmark.pedantic(
        lambda: compare_scenario1(
            scenario1_results, vf_table=experiment_context.vf_table
        ),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nanalytical-vs-experimental over {len(summary.points)} points: "
        f"mean |log ratio| {summary.mean_abs_log_ratio:.2f}, worst factor "
        f"{summary.worst_factor:.2f}, within 2x: {summary.within_factor(2.0):.0%}"
    )
    assert summary.within_factor(2.0) >= 0.8
    assert summary.mean_abs_log_ratio < 0.5


def test_figure3_hot_apps_cool_most(benchmark, scenario1_results):
    """FMM and LU consume the most power at nominal, so they cool most."""
    benchmark.pedantic(lambda: scenario1_results, rounds=1, iterations=1)

    def temperature_drop(app):
        rows = {r.n: r for r in scenario1_results[app]}
        return rows[1].average_temperature_c - rows[16].average_temperature_c

    drops = {app: temperature_drop(app) for app in scenario1_results}
    hottest = sorted(drops, key=drops.get, reverse=True)[:4]
    assert "FMM" in hottest
    assert "LU" in hottest
