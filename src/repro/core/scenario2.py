"""Scenario II — performance optimization under a power budget (Sec. 2.3).

The chip power may not exceed the budget of the 1-core run at full
throttle.  For each N the solver finds the highest legal (V, f) and
reports the speedup ``S = N * eps_n * f / f1`` (Eq. 10).  Three regimes
arise, in the order the paper discusses them:

* ``"nominal"`` — small N or a frugal chip: nominal V/f already fits the
  budget; the analytical model never overclocks, so speedup saturates at
  ``N * eps_n``.
* ``"voltage-scaling"`` — the usual case: the budget equality of Eq. 11
  is solved for V (bisection — the closed form is blocked by the H(V, T)
  leakage term and the thermal feedback), with ``f = f_max(V)``.
* ``"frequency-only"`` — V has hit the ``2 Vth`` noise-margin floor; only
  frequency can fall further, and since dynamic power is merely *linear*
  in f, each added core costs a large frequency cut.  This is the regime
  that bends the Figure 2 curves downward and makes speedup collapse at
  large N, especially at 65 nm where the static share is bigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.efficiency import EfficiencyCurve
from repro.core.perfmodel import speedup_from_frequency
from repro.core.powermodel import AnalyticalChipModel, OperatingPoint, PowerBreakdown
from repro.errors import ConvergenceError, InfeasibleOperatingPoint


@dataclass(frozen=True)
class Scenario2Point:
    """One solved power-budgeted configuration."""

    n: int
    eps_n: float
    operating_point: OperatingPoint
    speedup: float
    regime: str

    @property
    def voltage(self) -> float:
        """Chip supply voltage (volts)."""
        return self.operating_point.voltage

    @property
    def frequency_hz(self) -> float:
        """Chip clock frequency (hertz)."""
        return self.operating_point.frequency_hz

    @property
    def power(self) -> PowerBreakdown:
        """Equilibrium chip power."""
        return self.operating_point.power

    @property
    def temperature_celsius(self) -> float:
        """Equilibrium average die temperature (Celsius)."""
        return self.operating_point.temperature_celsius


class PerformanceOptimizationScenario:
    """Solver for the paper's Scenario II on an analytical chip model."""

    #: Relative tolerance on meeting the power budget.
    BUDGET_TOLERANCE = 1e-6

    def __init__(
        self, chip: AnalyticalChipModel, budget_w: Optional[float] = None
    ) -> None:
        self.chip = chip
        reference = chip.reference_point()
        #: The power budget; defaults to the 1-core full-throttle power,
        #: exactly as the paper sets it.
        self.budget_w = budget_w if budget_w is not None else reference.power.total_w
        if self.budget_w <= 0:
            raise InfeasibleOperatingPoint("power budget must be positive")
        self._reference = reference

    @property
    def reference(self) -> OperatingPoint:
        """The 1-core nominal design point."""
        return self._reference

    def _power_at_voltage(self, n: int, v: float) -> OperatingPoint:
        """Equilibrium at (n, v) running as fast as the voltage allows."""
        return self.chip.equilibrium(n, v, self.chip.tech.fmax(v))

    def _power_at_frequency(self, n: int, f_hz: float) -> OperatingPoint:
        """Equilibrium at the voltage floor with an explicit frequency."""
        return self.chip.equilibrium(n, self.chip.tech.v_min, f_hz)

    def _total_w_or_inf(self, point_fn, *args) -> float:
        """Equilibrium total power, with thermal runaway read as infinite.

        Bisection probes far above the budget can have no thermal
        equilibrium at all (leakage outruns the package); for the budget
        search those points are simply "over budget".
        """
        try:
            return point_fn(*args).power.total_w
        except ConvergenceError:
            return float("inf")

    def solve(self, n: int, eps_n: float) -> Scenario2Point:
        """Best-performance configuration for ``n`` cores within the budget."""
        tech = self.chip.tech
        budget = self.budget_w

        nominal_w = self._total_w_or_inf(
            self.chip.equilibrium, n, tech.vdd_nominal, tech.f_nominal
        )
        if nominal_w <= budget * (1 + self.BUDGET_TOLERANCE):
            nominal = self.chip.equilibrium(n, tech.vdd_nominal, tech.f_nominal)
            return self._make_point(n, eps_n, nominal, "nominal")

        if self._total_w_or_inf(self._power_at_voltage, n, tech.v_min) <= budget:
            # Voltage-scaling regime: bisect V in [v_min, v1] on the
            # monotone P(V) with f = f_max(V)  (Eq. 11).
            lo, hi = tech.v_min, tech.vdd_nominal
            for _ in range(100):
                mid = 0.5 * (lo + hi)
                if self._total_w_or_inf(self._power_at_voltage, n, mid) > budget:
                    hi = mid
                else:
                    lo = mid
            point = self._power_at_voltage(n, lo)
            return self._make_point(n, eps_n, point, "voltage-scaling")

        # Frequency-only regime at the voltage floor.  Static power alone
        # (f -> 0) may already blow the budget, in which case no legal
        # configuration exists for this N.
        f_hi = tech.fmax(tech.v_min)
        f_lo = f_hi * 1e-6
        if self._total_w_or_inf(self._power_at_frequency, n, f_lo) > budget:
            raise InfeasibleOperatingPoint(
                f"static power of {n} cores at the voltage floor exceeds "
                f"the {budget:.1f} W budget"
            )
        for _ in range(100):
            f_mid = 0.5 * (f_lo + f_hi)
            if self._total_w_or_inf(self._power_at_frequency, n, f_mid) > budget:
                f_hi = f_mid
            else:
                f_lo = f_mid
        point = self._power_at_frequency(n, f_lo)
        return self._make_point(n, eps_n, point, "frequency-only")

    def _make_point(
        self, n: int, eps_n: float, point: OperatingPoint, regime: str
    ) -> Scenario2Point:
        speedup = speedup_from_frequency(
            point.frequency_hz, self.chip.tech.f_nominal, n, eps_n
        )
        return Scenario2Point(
            n=n, eps_n=eps_n, operating_point=point, speedup=speedup, regime=regime
        )

    def speedup_curve(
        self,
        efficiency: EfficiencyCurve,
        n_values: Iterable[int],
    ) -> List[Scenario2Point]:
        """Solve the Figure 2 speedup-versus-N curve.

        Core counts whose static floor power already exceeds the budget
        are skipped.
        """
        points: List[Scenario2Point] = []
        for n in n_values:
            try:
                points.append(self.solve(n, efficiency(n)))
            except InfeasibleOperatingPoint:
                continue
        return points

    def best_configuration(
        self,
        efficiency: EfficiencyCurve,
        candidates: Iterable[int],
    ) -> Scenario2Point:
        """The candidate N with the highest budget-legal speedup.

        The paper's headline: this optimum can sit well below the number
        of cores available, even at perfect efficiency.
        """
        best: Optional[Scenario2Point] = None
        for n in candidates:
            try:
                point = self.solve(n, efficiency(n))
            except InfeasibleOperatingPoint:
                continue
            if best is None or point.speedup > best.speedup:
                best = point
        if best is None:
            raise InfeasibleOperatingPoint("no candidate fits the power budget")
        return best
