"""Tests for the multiprogrammed-workload baseline."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_BARRIER, OP_CRITICAL, OP_LOAD, OP_STORE
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel
from repro.workloads.multiprogram import MultiprogrammedWorkload, homogeneous_mix


def short(name, scale=0.05):
    return WorkloadModel(workload_by_name(name).spec.scaled(scale))


@pytest.fixture()
def mix():
    return MultiprogrammedWorkload([short("FMM"), short("Radix")])


class TestConstruction:
    def test_name_and_size(self, mix):
        assert mix.name == "mix(FMM+Radix)"
        assert mix.n_programs == 2
        assert mix.supports(2)
        assert not mix.supports(4)
        assert mix.supported_thread_counts((1, 2, 4)) == [2]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiprogrammedWorkload([])

    def test_per_core_timings(self, mix):
        timings = mix.core_timing()
        assert len(timings) == 2
        assert timings[0].base_cpi == short("FMM").core_timing().base_cpi
        assert timings[1].base_cpi == short("Radix").core_timing().base_cpi

    def test_homogeneous_mix_reseeds(self):
        mix = homogeneous_mix(short("Barnes"), 3)
        assert mix.n_programs == 3
        seeds = {m.spec.seed for m in mix.models}
        assert len(seeds) == 3


class TestStreams:
    def test_single_common_barrier(self, mix):
        for tid in range(2):
            barriers = [op for op in mix.thread_ops(tid, 2) if op[0] == OP_BARRIER]
            assert barriers == [(OP_BARRIER, 0)]

    def test_address_spaces_disjoint(self, mix):
        def addresses(tid):
            out = set()
            for op in mix.thread_ops(tid, 2):
                if op[0] in (OP_LOAD, OP_STORE):
                    out.add(op[1])
                elif op[0] == OP_CRITICAL:
                    out.add(op[3])
            return out

        assert not addresses(0) & addresses(1)

    def test_lock_ids_disjoint(self):
        mix = MultiprogrammedWorkload([short("Radiosity"), short("Radiosity")])
        def lock_ids(tid):
            return {
                op[1] for op in mix.thread_ops(tid, 2) if op[0] == OP_CRITICAL
            }
        ids0, ids1 = lock_ids(0), lock_ids(1)
        if ids0 and ids1:
            assert not ids0 & ids1

    def test_wrong_count_rejected(self, mix):
        with pytest.raises(WorkloadError):
            next(mix.thread_ops(0, 4))
        with pytest.raises(WorkloadError):
            next(mix.thread_ops(5, 2))


class TestSimulation:
    def test_mix_simulates(self, mix):
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [mix.thread_ops(t, 2) for t in range(2)],
            mix.core_timing(),
            warmup_barriers=mix.warmup_barriers,
        )
        assert result.execution_time_ps > 0
        # No sharing: zero coherence traffic between the programs.
        assert result.coherence.cache_to_cache == 0
        assert result.coherence.invalidations == 0

    def test_no_parallel_efficiency_loss(self):
        # A 4-copy mix's throughput per core stays near the solo run's
        # (only shared L2/bus/memory couple them).
        base_model = short("Water-Sp", scale=0.08)
        solo = ChipMultiprocessor(CMPConfig()).run(
            [MultiprogrammedWorkload([base_model]).thread_ops(0, 1)],
            [base_model.core_timing()],
            warmup_barriers=1,
        )
        mix = homogeneous_mix(base_model, 4)
        mixed = ChipMultiprocessor(CMPConfig()).run(
            [mix.thread_ops(t, 4) for t in range(4)],
            mix.core_timing(),
            warmup_barriers=1,
        )
        solo_rate = solo.total_instructions / solo.execution_time_s
        mixed_rate = mixed.total_instructions / mixed.execution_time_s
        # Aggregate throughput scales to ~4x (within contention losses).
        assert mixed_rate > 3.0 * solo_rate
