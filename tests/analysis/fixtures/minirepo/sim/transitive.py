"""Transitive determinism fixtures (analyzer fixture; never imported).

Simulation code calling out-of-scope helpers: the hazards live in
``harness/clocky.py``, the findings anchor here, at the boundary call.
"""

from minirepo.harness.clocky import audited_helper, clean_helper, outer_helper
from minirepo.telemetry.host_side import wall_now


def tainted_step() -> float:
    # Flagged: outer_helper transitively reaches perf_counter.
    return outer_helper()


def audited_step() -> float:
    # NOT flagged: the hazard behind audited_helper carries an audited
    # inline suppression, so it does not taint callers.
    return audited_helper()


def exempt_step() -> float:
    # NOT flagged: telemetry/ is host-side by contract.
    return wall_now()


def clean_step() -> float:
    # NOT flagged: the helper chain never reaches a hazard.
    return clean_helper(1.0)
