"""Counter samples through the executor's outcome channel, per lane.

The sweep executor must ship each point's sampled readings back to the
coordinator no matter which lane evaluated it — inline, process pool,
or the resilient farm — and a warm-cache rerun must replay the original
timeline.  Per-channel value totals are therefore identical across all
lanes (timestamps differ; values are deterministic).
"""

import os

import pytest

from repro.harness.executor import ResultCache, RetryPolicy, SweepExecutor
from repro.telemetry.timeseries import (
    CounterSampler,
    channel_values,
    get_sampler,
    sample,
    set_sampler,
)


def sampling_row_point(point):
    """Picklable evaluator depositing two readings per call."""
    sample("probe.value", float(point))
    sample("probe.squared", float(point * point))
    return point * 2


def key_configs(points):
    return [{"kind": "sampling-test", "point": p} for p in points]


def fast_policy(**kwargs):
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("backoff_max_s", 0.0)
    return RetryPolicy(**kwargs)


def outcome_channels(outcomes):
    """Per-channel sorted value lists across every outcome's samples."""
    merged = channel_values(
        record for o in outcomes for record in o.telemetry.samples
    )
    return {name: sorted(values) for name, values in merged.items()}


POINTS = [0, 1, 2, 3]

EXPECTED = {
    "probe.value": [0.0, 1.0, 2.0, 3.0],
    "probe.squared": [0.0, 1.0, 4.0, 9.0],
}


@pytest.fixture(autouse=True)
def enabled_sampler():
    """An enabled sampler installed before any pool/farm fork."""
    previous = set_sampler(CounterSampler(enabled=True, max_samples=1024))
    yield
    set_sampler(previous)


class TestLaneSampleTotals:
    def test_inline_lane_carries_samples(self):
        outcomes = SweepExecutor(jobs=1).map(sampling_row_point, POINTS)
        assert [o.lane for o in outcomes] == ["inline"] * 4
        assert outcome_channels(outcomes) == EXPECTED

    def test_pool_lane_matches_serial_totals(self):
        outcomes = SweepExecutor(jobs=4, chunksize=1).map(
            sampling_row_point, POINTS
        )
        assert [o.lane for o in outcomes] == ["pool"] * 4
        assert os.getpid() not in {o.telemetry.pid for o in outcomes}
        assert outcome_channels(outcomes) == EXPECTED

    def test_farm_lane_matches_serial_totals(self):
        executor = SweepExecutor(jobs=2, retry=fast_policy(max_retries=1))
        outcomes = executor.map(sampling_row_point, POINTS)
        assert [o.lane for o in outcomes] == ["farm"] * 4
        assert outcome_channels(outcomes) == EXPECTED

    def test_warm_cache_replays_the_original_timeline(self, tmp_path):
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold_outcomes = cold.map(
            sampling_row_point, POINTS, key_configs=key_configs(POINTS)
        )

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm_outcomes = warm.map(
            sampling_row_point, POINTS, key_configs=key_configs(POINTS)
        )
        assert warm.stats.evaluated == 0
        assert [o.lane for o in warm_outcomes] == ["cache"] * 4
        # Replays carry the original samples verbatim, timestamps included.
        for cold_outcome, warm_outcome in zip(cold_outcomes, warm_outcomes):
            assert warm_outcome.telemetry.samples == cold_outcome.telemetry.samples
        assert outcome_channels(warm_outcomes) == EXPECTED


class TestSampleWindowing:
    def test_points_never_drain_pre_existing_coordinator_readings(self):
        sampler = get_sampler()
        sampler.sample("calibration.probe", 1.0)
        outcomes = SweepExecutor(jobs=1).map(sampling_row_point, [5])
        # The point took only its own window...
        assert outcome_channels(outcomes) == {
            "probe.value": [5.0],
            "probe.squared": [25.0],
        }
        # ...leaving the calibration reading for the run's finalize.
        assert [r.channel for r in sampler.records()] == ["calibration.probe"]

    def test_disabled_sampler_yields_empty_sample_tuples(self):
        set_sampler(CounterSampler(enabled=False))
        outcomes = SweepExecutor(jobs=1).map(sampling_row_point, POINTS)
        assert all(o.telemetry.samples == () for o in outcomes)
