"""Tests for the JSON results store."""

import json

import pytest

from repro.core.sweeps import Figure1Row, Figure2Row
from repro.errors import ConfigurationError
from repro.harness.designspace import DesignPoint, DesignRunRow
from repro.harness.percore import PerCoreDVFSResult
from repro.harness.profiling import SimPointRow
from repro.harness.scenario1 import Scenario1Row
from repro.harness.scenario2 import Scenario2Row
from repro.harness.store import SCHEMA_VERSION, load_results, save_results


def sample_rows():
    return {
        "fig3": [
            Scenario1Row(
                app="FMM",
                n=4,
                nominal_efficiency=0.85,
                actual_speedup=1.2,
                normalized_power=0.45,
                normalized_power_density=0.12,
                average_temperature_c=48.5,
                frequency_hz=0.9e9,
                voltage=0.73,
                total_power_w=4.0,
            )
        ],
        "fig4": [
            Scenario2Row(
                app="Radix",
                n=8,
                nominal_speedup=6.5,
                actual_speedup=6.5,
                frequency_hz=3.2e9,
                voltage=1.1,
                power_w=12.0,
                budget_w=17.2,
            )
        ],
        "percore": [
            PerCoreDVFSResult(
                app="Cholesky",
                n=4,
                uniform_time_s=1e-5,
                uniform_energy_j=1e-4,
                percore_time_s=1.1e-5,
                percore_energy_j=8e-5,
                core_frequencies_hz=(3.2e9, 2.4e9, 2.4e9, 2.6e9),
                core_voltages=(1.1, 0.97, 0.97, 1.0),
            )
        ],
        "design": [
            DesignPoint(
                label="L2=4MB",
                n=8,
                execution_time_s=1e-5,
                nominal_efficiency=0.7,
                l1_miss_rate=0.05,
                memory_stall_fraction=0.4,
                bus_utilisation=0.5,
            )
        ],
    }


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        path = tmp_path / "campaign.json"
        original = sample_rows()
        save_results(original, path)
        loaded = load_results(path)
        assert loaded == original

    def test_tuples_restored(self, tmp_path):
        path = tmp_path / "c.json"
        save_results(sample_rows(), path)
        loaded = load_results(path)
        row = loaded["percore"][0]
        assert isinstance(row.core_frequencies_hz, tuple)
        assert row.energy_saving == pytest.approx(0.2)

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "c.json"
        save_results(sample_rows(), path)
        document = json.loads(path.read_text())
        assert document["schema"] == SCHEMA_VERSION
        assert set(document["groups"]) == {"fig3", "fig4", "percore", "design"}

    def test_saved_campaigns_record_their_provenance(self, tmp_path):
        from repro.telemetry.manifest import git_sha

        path = tmp_path / "c.json"
        save_results(sample_rows(), path)
        document = json.loads(path.read_text())
        assert document["provenance"] == {"git_sha": git_sha()}
        # Provenance is metadata only; loading still round-trips the rows.
        assert load_results(path) == sample_rows()

    def test_sweep_and_profiling_row_types_round_trip(self, tmp_path):
        campaign = {
            "fig1": [
                Figure1Row(
                    technology="65nm",
                    n=8,
                    eps_n=0.8,
                    normalized_power=0.35,
                    frequency_hz=0.5e9,
                    voltage=0.75,
                    voltage_floored=False,
                )
            ],
            "fig2": [
                Figure2Row(
                    technology="130nm",
                    n=4,
                    eps_n=1.0,
                    speedup=3.1,
                    regime="voltage-scaling",
                    frequency_hz=2.4e9,
                    voltage=1.2,
                )
            ],
            "profile": [
                SimPointRow(
                    app="Ocean",
                    n=16,
                    frequency_hz=3.2e9,
                    voltage=1.1,
                    execution_time_ps=123456,
                    total_power_w=40.0,
                    core_power_density_w_m2=3.2e5,
                    average_temperature_c=55.0,
                    average_cpi=1.4,
                    l1_miss_rate=0.06,
                    memory_stall_fraction=0.45,
                    bus_utilisation=0.6,
                )
            ],
            "designrun": [
                DesignRunRow(
                    n=8,
                    execution_time_ps=98765,
                    execution_time_s=9.8765e-8,
                    l1_miss_rate=0.04,
                    memory_stall_fraction=0.3,
                    bus_utilisation=0.5,
                )
            ],
        }
        path = tmp_path / "sweep.json"
        save_results(campaign, path)
        assert load_results(path) == campaign


class TestDeterminism:
    def test_groups_are_saved_and_loaded_sorted(self, tmp_path):
        rows = sample_rows()
        scrambled = {
            name: rows[name] for name in ("percore", "fig4", "design", "fig3")
        }
        path = tmp_path / "c.json"
        save_results(scrambled, path)
        document = json.loads(path.read_text())
        assert list(document["groups"]) == sorted(rows)
        assert list(load_results(path)) == sorted(rows)

    def test_identical_campaigns_produce_identical_bytes(self, tmp_path):
        rows = sample_rows()
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        save_results(rows, first)
        save_results(dict(reversed(list(rows.items()))), second)
        assert first.read_bytes() == second.read_bytes()


class TestValidation:
    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 999, "groups": {}}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_results(path)

    def test_wrong_schema_error_names_file_and_versions(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 999, "groups": {}}))
        with pytest.raises(ConfigurationError) as excinfo:
            load_results(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "999" in message
        assert str(SCHEMA_VERSION) in message

    def test_not_json_error_names_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ truncated")
        with pytest.raises(ConfigurationError, match="bad.json"):
            load_results(path)

    def test_rejects_malformed_groups_section(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "groups": [1, 2]}))
        with pytest.raises(ConfigurationError, match="groups"):
            load_results(path)

    def test_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "groups": {
                        "g": [{"type": "scenario2", "data": {"bogus": 1}}]
                    },
                }
            )
        )
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_unknown_row_type(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "groups": {"g": [{"type": "mystery", "data": {}}]},
                }
            )
        )
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_unsupported_row_objects(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_results({"g": [object()]}, tmp_path / "x.json")


class TestFailedPointRows:
    def failed_row(self):
        from repro.harness.journal import FailedPointRow

        return FailedPointRow(
            key="deadbeef",
            index=7,
            error_type="WorkerCrash",
            message="worker pid 123 died with exit code 77",
            attempts=3,
            retryable=True,
        )

    def test_failed_points_round_trip(self, tmp_path):
        path = tmp_path / "degraded.json"
        campaign = {"failures": [self.failed_row()]}
        save_results(campaign, path)
        assert load_results(path) == campaign

    def test_failed_point_rows_built_from_outcomes(self):
        from repro.harness.executor import PointOutcome, SweepFailure
        from repro.harness.store import failed_point_rows

        outcomes = [
            PointOutcome(index=0, key="k0", value=1.0),
            PointOutcome(
                index=1,
                key="k1",
                value=None,
                failure=SweepFailure(
                    error_type="PointTimeout",
                    message="too slow",
                    retryable=True,
                ),
                attempts=4,
            ),
        ]
        rows = failed_point_rows(outcomes)
        assert len(rows) == 1
        assert rows[0].index == 1
        assert rows[0].error_type == "PointTimeout"
        assert rows[0].attempts == 4
        assert rows[0].retryable
