"""Cross-model integration tests: the two halves must agree.

The paper's central validation claim is that "the analytical model
captures the power-performance behavior reasonably well" compared to the
detailed simulation.  These tests assert that agreement on our
reproduction: feed the *measured* efficiency curve from the simulator
into the analytical Scenario I and check the predicted power savings
land in the same region the experimental pipeline measures.
"""

import pytest

from repro.core import (
    AnalyticalChipModel,
    MeasuredEfficiency,
    PowerOptimizationScenario,
)
from repro.harness import ExperimentContext, run_scenario1
from repro.tech import NODE_65NM
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.15)


@pytest.fixture(scope="module")
def fmm_rows(context):
    return run_scenario1(
        context, [workload_by_name("FMM")], core_counts=(1, 2, 4, 8)
    )["FMM"]


class TestAnalyticalPredictsExperiment:
    def test_power_savings_same_region(self, fmm_rows):
        """Analytical Scenario I with the measured eps curve should put
        normalized power within ~2x of the simulated value (the paper
        claims qualitative, not quantitative, agreement)."""
        measured = {row.n: row.nominal_efficiency for row in fmm_rows if row.n > 1}
        efficiency = MeasuredEfficiency(measured)
        scenario = PowerOptimizationScenario(AnalyticalChipModel(NODE_65NM))
        for row in fmm_rows:
            if row.n == 1:
                continue
            predicted = scenario.solve(row.n, efficiency(row.n)).normalized_power
            assert predicted < 1.0
            assert row.normalized_power < 1.0
            ratio = row.normalized_power / predicted
            assert 0.4 < ratio < 2.5, (row.n, row.normalized_power, predicted)

    def test_both_models_agree_power_falls_then_flattens(self, fmm_rows):
        experimental = [row.normalized_power for row in fmm_rows if row.n > 1]
        # Strictly better than baseline everywhere and biggest drop first.
        assert all(p < 1.0 for p in experimental)
        drops = [a - b for a, b in zip([1.0] + experimental, experimental)]
        assert drops[0] == max(drops)

    def test_simulated_speedup_never_below_target(self, fmm_rows):
        """The analytical model predicts exactly 1.0; the simulator may
        overshoot (memory gap) but must not undershoot materially."""
        for row in fmm_rows:
            assert row.actual_speedup >= 0.95


class TestEndToEndDeterminism:
    def test_pipeline_reproducible(self, context):
        first = run_scenario1(
            context, [workload_by_name("Water-Sp")], core_counts=(1, 2)
        )["Water-Sp"]
        second = run_scenario1(
            context, [workload_by_name("Water-Sp")], core_counts=(1, 2)
        )["Water-Sp"]
        for a, b in zip(first, second):
            assert a.normalized_power == b.normalized_power
            assert a.actual_speedup == b.actual_speedup
            assert a.average_temperature_c == b.average_temperature_c


class TestPhysicalSanity:
    def test_energy_conservation_of_power_map(self, context):
        """The thermal solve's heat outflow must equal the power map."""
        result, power = context.run(workload_by_name("Barnes"), 2)
        network = context.thermal.network
        temps = power.thermal.block_temperatures_k
        outflow = sum(
            (temps[name] - context.thermal.ambient_k)
            * network._vertical_conductance(name)
            for name in temps
        )
        assert outflow == pytest.approx(sum(power.power_map.values()), rel=1e-6)

    def test_power_scales_with_voltage_squared_times_frequency(self, context):
        """End-to-end Eq. 2 check through the whole stack: same workload
        at two operating points, dynamic power ratio ~ (V^2 f) ratio."""
        model = workload_by_name("Water-Sp")
        _r1, p_full = context.run(model, 2, 3.2e9)
        _r2, p_half = context.run(model, 2, 1.6e9)
        v_full = context.vf_table.voltage_for_frequency(3.2e9)
        v_half = context.vf_table.voltage_for_frequency(1.6e9)
        expected = (v_half / v_full) ** 2 * (1.6 / 3.2)
        observed = p_half.dynamic_w / p_full.dynamic_w
        # Event *rates* don't halve exactly (memory time doesn't scale),
        # so allow a generous band around the Eq. 2 prediction.
        assert expected * 0.6 < observed < expected * 1.9
