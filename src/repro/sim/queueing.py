"""Analytic queueing cross-check for the shared-bus model.

The bus is a serially-reusable resource with (nearly) deterministic
service time — an **M/D/1** queue when requests arrive approximately at
random.  Queueing theory then predicts the mean wait from utilisation
alone (Pollaczek-Khinchine)::

    W = rho * S / (2 * (1 - rho))

with service time ``S`` and utilisation ``rho``.  This module computes
the prediction from a simulation's measured arrival rate and compares it
to the simulator's actually-measured grant delays — a self-consistency
check between the discrete-event machinery and closed-form theory, and a
quick way to reason about bus saturation without simulating.

Agreement is expected to be loose (arrivals are bursty and correlated,
cores throttle themselves when stalled — a closed system, not an open
M/D/1), so the comparison helper reports the ratio rather than asserting
tightness; the tests pin the regime-level behaviour (low utilisation →
negligible wait; near saturation → waits blow up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.cmp import SimulationResult


@dataclass(frozen=True)
class BusQueueingAnalysis:
    """Measured versus predicted bus queueing for one run."""

    utilisation: float
    service_time_ps: float
    arrival_rate_per_ps: float
    measured_mean_wait_ps: float
    predicted_mean_wait_ps: float

    @property
    def wait_ratio(self) -> float:
        """Measured over predicted mean wait (1.0 = perfect M/D/1)."""
        if self.predicted_mean_wait_ps == 0:
            return float("inf") if self.measured_mean_wait_ps > 0 else 1.0
        return self.measured_mean_wait_ps / self.predicted_mean_wait_ps


def md1_mean_wait(utilisation: float, service_time: float) -> float:
    """Pollaczek-Khinchine mean queueing delay for M/D/1."""
    if not 0.0 <= utilisation < 1.0:
        raise ConfigurationError("utilisation must be in [0, 1)")
    if service_time < 0:
        raise ConfigurationError("service time must be non-negative")
    return utilisation * service_time / (2.0 * (1.0 - utilisation))


def analyse_bus_queueing(result: SimulationResult) -> BusQueueingAnalysis:
    """Extract the M/D/1 comparison from a finished simulation."""
    bus = result.bus
    duration = result.execution_time_ps
    if duration <= 0:
        raise ConfigurationError("run has no measured time")
    if bus.transactions == 0:
        return BusQueueingAnalysis(
            utilisation=0.0,
            service_time_ps=0.0,
            arrival_rate_per_ps=0.0,
            measured_mean_wait_ps=0.0,
            predicted_mean_wait_ps=0.0,
        )
    service = bus.busy_ps / bus.transactions
    rho = min(bus.busy_ps / duration, 0.999)
    measured_wait = bus.wait_ps / bus.transactions
    predicted_wait = md1_mean_wait(rho, service)
    return BusQueueingAnalysis(
        utilisation=rho,
        service_time_ps=service,
        arrival_rate_per_ps=bus.transactions / duration,
        measured_mean_wait_ps=measured_wait,
        predicted_mean_wait_ps=predicted_wait,
    )


def saturation_core_count(
    per_core_request_rate_per_cycle: float,
    service_cycles: float,
) -> float:
    """Analytic estimate of the core count that saturates the bus.

    ``rho = N * lambda * S = 1``: the back-of-envelope the paper's bus
    choice implies.  E.g. a 5 % L1 miss rate at 0.25 memory ops per
    instruction and IPC 1 gives lambda = 0.0125 requests/cycle; with a
    6-cycle service the bus saturates near N = 13.
    """
    if per_core_request_rate_per_cycle <= 0 or service_cycles <= 0:
        raise ConfigurationError("rates must be positive")
    return 1.0 / (per_core_request_rate_per_cycle * service_cycles)
