"""Hot-path discipline checker.

The simulator's per-op loops (``Core.step_fast``, the scheduler window
in ``sim/cmp.py``, the compiled-stream dispatch in ``sim/ops.py``, the
tracer's disabled no-op path) dominate wall-clock time.  PR 2 earned
its speedup by keeping those loops allocation-free and
dynamic-dispatch-free; this checker keeps them that way.

A function opts in with a ``# repro: hot`` marker (see
:mod:`repro.analysis.source`).  Inside a marked function:

* ``HOT-ALLOC`` — closures (``def``/``lambda`` in the body) anywhere,
  and comprehensions/generator expressions *inside a loop*: each
  builds a fresh object per iteration.  A comprehension before the
  loop is setup cost and is fine.
* ``HOT-GETATTR`` — ``getattr``/``hasattr``/``setattr`` anywhere:
  dynamic attribute dispatch defeats the compiled-stream design; bind
  attributes to locals before the loop instead.
* ``HOT-TRY`` — ``try`` inside a loop: zero-cost only until it isn't
  (the handler path), and it hides per-op control flow.  Hoist the
  try outside the loop.
* ``HOT-FORMAT`` — f-strings with substitutions, ``str.format``,
  ``%``-formatting, and ``logging`` calls: string building per op is
  pure overhead.  Exception: anything inside a ``raise`` statement —
  error paths execute at most once and deserve good messages.

The rules are warnings (they gate like everything else; severity only
ranks report output).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.index import FunctionInfo, TreeIndex

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_LOOPS = (ast.For, ast.While, ast.AsyncFor)

_DYNAMIC_ATTR_BUILTINS = ("getattr", "hasattr", "setattr")

_LOG_METHODS = ("debug", "info", "warning", "error", "exception", "critical", "log")


def check(index: TreeIndex) -> List[Finding]:
    """Run the HOT-* rules over every ``# repro: hot`` function."""
    findings: List[Finding] = []
    for infos in index.functions.values():
        for info in infos:
            if info.is_hot:
                _check_function(info, findings)
    findings.sort()
    return findings


def _raise_lines(function: FunctionInfo) -> Set[int]:
    """Line spans of every ``raise`` subtree (exempt from HOT-FORMAT)."""
    lines: Set[int] = set()
    for node in ast.walk(function.node):
        if isinstance(node, ast.Raise):
            end = getattr(node, "end_lineno", None) or node.lineno
            lines.update(range(node.lineno, end + 1))
    return lines


def _emit(
    function: FunctionInfo,
    node: ast.AST,
    rule: str,
    message: str,
    findings: List[Finding],
) -> None:
    line = getattr(node, "lineno", function.node.lineno)
    findings.append(
        Finding(
            path=function.file.rel,
            line=line,
            rule=rule,
            severity="warning",
            message=f"in hot function `{function.qualname}`: {message}",
            snippet=function.file.snippet(line),
        )
    )


def _check_function(function: FunctionInfo, findings: List[Finding]) -> None:
    raise_lines = _raise_lines(function)

    def scan(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _emit(
                    function,
                    child,
                    "HOT-ALLOC",
                    f"nested function `{child.name}` allocates a closure; "
                    "hoist it to module or class scope",
                    findings,
                )
                # Do not descend: the closure has its own (cold) body.
                continue
            if isinstance(child, ast.Lambda):
                _emit(
                    function,
                    child,
                    "HOT-ALLOC",
                    "lambda allocates a closure; hoist it out of the hot path",
                    findings,
                )
                continue
            if isinstance(child, _COMPREHENSIONS) and in_loop:
                kind = type(child).__name__
                _emit(
                    function,
                    child,
                    "HOT-ALLOC",
                    f"{kind} inside a loop allocates per iteration; "
                    "hoist it or rewrite as an explicit accumulation",
                    findings,
                )
            if isinstance(child, ast.Try) and in_loop:
                _emit(
                    function,
                    child,
                    "HOT-TRY",
                    "try/except inside a loop; hoist the try outside "
                    "the per-op loop",
                    findings,
                )
            if isinstance(child, ast.Call):
                _check_call(function, child, raise_lines, findings)
            if (
                isinstance(child, ast.JoinedStr)
                and child.lineno not in raise_lines
                and any(
                    isinstance(part, ast.FormattedValue) for part in child.values
                )
            ):
                _emit(
                    function,
                    child,
                    "HOT-FORMAT",
                    "f-string builds a string per execution; hot paths "
                    "must not format (raise statements are exempt)",
                    findings,
                )
            scan(child, in_loop or isinstance(child, _LOOPS))

    scan(function.node, False)


def _check_call(
    function: FunctionInfo,
    node: ast.Call,
    raise_lines: Set[int],
    findings: List[Finding],
) -> None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _DYNAMIC_ATTR_BUILTINS:
        _emit(
            function,
            node,
            "HOT-GETATTR",
            f"`{func.id}()` is dynamic attribute dispatch; bind the "
            "attribute to a local before the loop",
            findings,
        )
        return
    if node.lineno in raise_lines:
        return
    if isinstance(func, ast.Attribute):
        if func.attr == "format" and isinstance(
            func.value, (ast.Constant, ast.Name, ast.Attribute)
        ):
            if not (
                isinstance(func.value, ast.Constant)
                and not isinstance(func.value.value, str)
            ):
                _emit(
                    function,
                    node,
                    "HOT-FORMAT",
                    "`.format()` call; hot paths must not build strings",
                    findings,
                )
            return
        if func.attr in _LOG_METHODS and isinstance(func.value, ast.Name):
            base = func.value.id.lower()
            if base in ("log", "logger", "logging"):
                _emit(
                    function,
                    node,
                    "HOT-FORMAT",
                    f"logging call `{func.value.id}.{func.attr}()`; "
                    "hot paths must not log per op",
                    findings,
                )
