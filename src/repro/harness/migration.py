"""Activity migration: rotate hot work across cores to flatten hotspots.

The paper's thermal story is steady-state: one core at full throttle
sits at the 100 C design point.  The thermal-management literature it
cites ([12], [38]) adds a time axis: because silicon heats with an RC
time constant (tens of milliseconds — see
:mod:`repro.harness.thermal_transient`), *migrating* a hot thread among
idle cores faster than that constant spreads the heat over more silicon
and lowers the peak temperature, at the cost of cold-cache misses after
every hop.

This harness runs a single-threaded workload on a many-core chip through
a :class:`~repro.sim.cmp.ChipSession`, either pinned to core 0 or
rotated round-robin over ``rotation_set`` cores each window, then plays
the resulting sequence of per-window power maps through the transient RC
network and reports the peak block temperature and the migration's
performance cost (which the warm session measures for real: the L1 the
thread left behind is useless after a hop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.sim.cmp import ChipSession
from repro.sim.ops import OP_BARRIER
from repro.units import kelvin_to_celsius
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class MigrationResult:
    """One policy's outcome (pinned or rotated)."""

    policy: str
    total_time_s: float
    peak_temperature_c: float
    #: Peak steady-state temperature the same power maps would reach if
    #: held forever (the no-time-axis upper bound).
    steady_peak_c: float
    l1_miss_rate: float
    window_count: int


def _strip_barriers(ops: Sequence[tuple]) -> List[tuple]:
    return [op for op in ops if op[0] != OP_BARRIER]


def _windows_of(model: WorkloadModel, scale: float, per_window_barriers: int):
    spec_model = model
    if scale != 1.0:
        spec_model = WorkloadModel(model.spec.scaled(scale))
    ops = list(spec_model.thread_ops(0, 1))
    windows: List[List[tuple]] = [[]]
    barriers = 0
    for op in ops:
        if op[0] == OP_BARRIER:
            barriers += 1
            if barriers % per_window_barriers == 0:
                windows.append([])
            continue
        windows[-1].append(op)
    return [w for w in windows if w], spec_model


def run_activity_migration(
    context: ExperimentContext,
    model: WorkloadModel,
    rotation_set: int = 4,
    rotate: bool = True,
    per_window_barriers: int = 1,
    transient_dt_s: float = 1e-3,
    assumed_window_s: float = 20e-3,
) -> MigrationResult:
    """Run one policy and report thermal peak + performance.

    ``assumed_window_s`` stretches each simulated window to a realistic
    OS-scheduler quantum for the thermal playback (the simulated windows
    are microseconds long at library scale; heat needs milliseconds).
    The power maps are unaffected — they are averages.
    """
    if rotation_set < 1 or rotation_set > context.cmp_config.n_cores:
        raise ConfigurationError("rotation_set outside the chip")
    windows, scaled = _windows_of(
        model, context.workload_scale, per_window_barriers
    )
    if not windows:
        raise ConfigurationError("workload produced no windows")

    session = ChipSession(
        context.cmp_config,
        n_threads=rotation_set,
        timing=scaled.core_timing(),
    )

    total_time = 0.0
    power_maps: List[Dict[str, float]] = []
    durations: List[float] = []
    misses = accesses = 0
    for index, window in enumerate(windows):
        home = (index % rotation_set) if rotate else 0
        thread_ops: List[List[tuple]] = [[] for _ in range(rotation_set)]
        thread_ops[home] = list(window)
        result = session.run_window(thread_ops)
        power = context.chip_power.evaluate(result)
        power_maps.append(dict(power.power_map))
        durations.append(result.execution_time_s)
        total_time += result.execution_time_s
        misses += result.coherence.l1_misses
        accesses += result.coherence.l1_hits + result.coherence.l1_misses

    # Thermal playback: hold each window's map for a scheduler quantum.
    network = context.thermal.network
    ambient = context.thermal.ambient_k
    excluded = set(context.thermal.exclude_from_average)
    state = network.steady_state(power_maps[0], ambient)
    peak_k = max(t for n, t in state.items() if n not in excluded)
    steady_peak_k = peak_k
    for power_map in power_maps[1:]:
        steady = network.steady_state(power_map, ambient)
        steady_peak_k = max(
            steady_peak_k,
            max(t for n, t in steady.items() if n not in excluded),
        )
        state = network.transient(
            power_map,
            ambient,
            initial_k=state,
            duration_s=assumed_window_s,
            dt_s=transient_dt_s,
        )
        peak_k = max(
            peak_k, max(t for n, t in state.items() if n not in excluded)
        )

    return MigrationResult(
        policy=f"rotate-{rotation_set}" if rotate else "pinned",
        total_time_s=total_time,
        peak_temperature_c=kelvin_to_celsius(peak_k),
        steady_peak_c=kelvin_to_celsius(steady_peak_k),
        l1_miss_rate=misses / accesses if accesses else 0.0,
        window_count=len(windows),
    )


def compare_migration(
    context: ExperimentContext,
    model: WorkloadModel,
    rotation_set: int = 4,
    **kwargs,
) -> Tuple[MigrationResult, MigrationResult]:
    """(pinned, rotated) results for one workload."""
    pinned = run_activity_migration(
        context, model, rotation_set=rotation_set, rotate=False, **kwargs
    )
    rotated = run_activity_migration(
        context, model, rotation_set=rotation_set, rotate=True, **kwargs
    )
    return pinned, rotated
