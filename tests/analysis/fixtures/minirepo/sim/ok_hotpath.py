"""Hot-path-clean code, and cold code that would otherwise violate."""


# repro: hot
def disciplined(stream: list, bound_run) -> int:
    total = 0
    for op in stream:
        total += bound_run(op)
    return total


def cold_function(stream: list, registry: object) -> int:
    # No hot marker: closures, getattr, and f-strings are all fine here.
    handler = lambda op: op + 1  # noqa: E731 (fixture)
    total = sum(handler(op) for op in stream)
    if hasattr(registry, "fallback"):
        total += 1
    return total + len(f"{total}")
