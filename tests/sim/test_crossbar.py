"""Tests for the banked-crossbar interconnect extension."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.bus import BankedCrossbar, BusConfig
from repro.sim.clock import ClockDomain
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


def make_crossbar(channels=4):
    return BankedCrossbar(BusConfig(), ClockDomain(3.2e9), n_channels=channels)


class TestBankedCrossbar:
    def test_disjoint_routes_do_not_contend(self):
        xbar = make_crossbar(4)
        g0, _ = xbar.acquire(0, with_data=True, route=0)
        g1, _ = xbar.acquire(0, with_data=True, route=1)
        assert g0 == g1 == 0

    def test_same_route_serialises(self):
        xbar = make_crossbar(4)
        _, r0 = xbar.acquire(0, with_data=True, route=0)
        g1, _ = xbar.acquire(0, with_data=True, route=4)  # 4 % 4 == 0
        assert g1 == r0

    def test_single_channel_degenerates_to_bus(self):
        xbar = make_crossbar(1)
        _, r0 = xbar.acquire(0, with_data=True, route=0)
        g1, _ = xbar.acquire(0, with_data=True, route=1)
        assert g1 == r0

    def test_port_overhead_slower_per_transaction(self):
        from repro.sim.bus import SharedBus

        bus = SharedBus(BusConfig(), ClockDomain(3.2e9))
        xbar = make_crossbar(4)
        _, bus_release = bus.acquire(0, with_data=True)
        _, xbar_release = xbar.acquire(0, with_data=True, route=0)
        assert xbar_release > bus_release  # the switch costs a cycle

    def test_utilisation_averages_channels(self):
        xbar = make_crossbar(2)
        _, release = xbar.acquire(0, with_data=True, route=0)
        # Only one of two channels busy.
        assert xbar.utilisation(release) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_crossbar(0)
        with pytest.raises(ConfigurationError):
            BankedCrossbar(
                BusConfig(), ClockDomain(3.2e9), n_channels=2, port_cycles=-1
            )

    def test_reset(self):
        xbar = make_crossbar(2)
        xbar.acquire(0, with_data=True, route=0)
        xbar.reset_timing()
        g, _ = xbar.acquire(0, with_data=True, route=0)
        assert g == 0


class TestCrossbarCMP:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CMPConfig(interconnect="torus")
        with pytest.raises(ConfigurationError):
            CMPConfig(interconnect="crossbar", crossbar_channels=0)

    def test_crossbar_helps_bus_bound_workload(self):
        # Radix at 16 cores saturates the single bus; the crossbar
        # relieves it and execution time drops.
        model = WorkloadModel(workload_by_name("Radix").spec.scaled(0.15))

        def run(config):
            return ChipMultiprocessor(config).run(
                [model.thread_ops(t, 16) for t in range(16)],
                model.core_timing(),
                warmup_barriers=model.warmup_barriers,
            )

        bus_run = run(CMPConfig(interconnect="bus"))
        xbar_run = run(CMPConfig(interconnect="crossbar", crossbar_channels=8))
        assert xbar_run.execution_time_ps < bus_run.execution_time_ps
        assert xbar_run.bus.utilisation(
            xbar_run.execution_time_ps
        ) < bus_run.bus.utilisation(bus_run.execution_time_ps)

    def test_crossbar_neutral_for_low_traffic(self):
        # A compute-bound app barely touches the interconnect; topology
        # should hardly matter.
        model = WorkloadModel(workload_by_name("Water-Sp").spec.scaled(0.1))

        def run(config):
            return ChipMultiprocessor(config).run(
                [model.thread_ops(t, 2) for t in range(2)],
                model.core_timing(),
                warmup_barriers=model.warmup_barriers,
            )

        bus_run = run(CMPConfig(interconnect="bus"))
        xbar_run = run(CMPConfig(interconnect="crossbar"))
        ratio = xbar_run.execution_time_ps / bus_run.execution_time_ps
        assert 0.95 < ratio < 1.05

    def test_coherence_still_correct_on_crossbar(self):
        # The MESI invariants machinery runs against the crossbar too.
        from tests.sim.test_mesi_invariants import check_invariants

        from repro.sim.cache import Cache, CacheConfig
        from repro.sim.coherence import MESIController
        from repro.sim.memory import MainMemory

        clock = ClockDomain(3.2e9)
        l1s = [Cache(CacheConfig(1024, 64, 2)) for _ in range(4)]
        l2 = Cache(CacheConfig(16 * 1024, 128, 8))
        ctrl = MESIController(
            l1s, l2, make_crossbar(4), MainMemory(), clock
        )
        t = 0
        pattern = [(0, 0x40, True), (1, 0x40, False), (2, 0x40, True), (3, 0x80, False)]
        for core, addr, write in pattern * 5:
            t = (ctrl.write if write else ctrl.read)(core, addr, t) + 1
            check_invariants(ctrl)
