"""Seeded fork-safety violations (analyzer fixture; never imported).

A miniature of the executor lanes: ``run_pool`` ships ``pool_worker``
to child processes, so everything reachable from it is scanned against
module-level mutable state.
"""

_RESULT_CACHE = {}
_SETTINGS = {"scale": 1.0}
_CODES = ("a", "b")  # immutable: never flagged
_LAZY_TABLE = None


def pool_worker(point):
    value = _compute(point)
    _RESULT_CACHE[point] = value  # FORK-GLOBAL-WRITE (store in worker)
    return value


def _compute(point):
    table = _ensure_table()
    return point * _SETTINGS["scale"] + len(table) + len(_CODES)


def _ensure_table():
    global _LAZY_TABLE
    if _LAZY_TABLE is None:
        _LAZY_TABLE = [1, 2, 3]  # FORK-LAZY-INIT (guarded global init)
    return _LAZY_TABLE


def set_scale(scale):
    # Coordinator-only writer: runs before the pool spawns.
    _SETTINGS["scale"] = scale


def run_pool(executor, points):
    set_scale(2.0)
    return list(executor.map(pool_worker, points))


def coordinator_only(point):
    # Not worker-reachable: writes here are not flagged.
    _RESULT_CACHE[point] = point
    return _RESULT_CACHE
