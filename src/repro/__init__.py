"""repro — a reproduction of Li & Martinez, "Power-Performance
Implications of Thread-level Parallelism on Chip Multiprocessors"
(ISPASS 2005).

The library has two halves, mirroring the paper:

**Analytical model** (:mod:`repro.core`, Section 2): parallel efficiency
+ granularity + DVFS in closed form over CMOS power equations.

    >>> from repro import AnalyticalChipModel, PowerOptimizationScenario
    >>> from repro.tech import NODE_65NM
    >>> chip = AnalyticalChipModel(NODE_65NM)
    >>> point = PowerOptimizationScenario(chip).solve(n=8, eps_n=0.8)
    >>> point.normalized_power < 1.0
    True

**Experimental model** (:mod:`repro.sim` / :mod:`repro.workloads` /
:mod:`repro.power` / :mod:`repro.thermal` / :mod:`repro.harness`,
Sections 3-4): a 16-way EV6-class CMP simulator with MESI coherence,
Wattch-style power, HotSpot-style thermals, and synthetic SPLASH-2
workload models, driven by the Figure 3 / Figure 4 pipelines.

    >>> from repro.harness import ExperimentContext, run_scenario1
    >>> from repro.workloads import workload_by_name
    >>> ctx = ExperimentContext(workload_scale=0.05)   # doctest: +SKIP
    >>> rows = run_scenario1(ctx, [workload_by_name("FMM")])  # doctest: +SKIP
"""

from repro.core import (
    AnalyticalChipModel,
    AmdahlEfficiency,
    CommunicationOverheadEfficiency,
    ConstantEfficiency,
    MeasuredEfficiency,
    PerformanceOptimizationScenario,
    PowerOptimizationScenario,
    SAMPLE_APPLICATION,
    figure1_sweep,
    figure2_sweep,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleOperatingPoint,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.tech import NODE_130NM, NODE_65NM, TechnologyNode, VFTable

__version__ = "1.0.0"

__all__ = [
    "AnalyticalChipModel",
    "AmdahlEfficiency",
    "CommunicationOverheadEfficiency",
    "ConstantEfficiency",
    "MeasuredEfficiency",
    "PerformanceOptimizationScenario",
    "PowerOptimizationScenario",
    "SAMPLE_APPLICATION",
    "figure1_sweep",
    "figure2_sweep",
    "ConfigurationError",
    "ConvergenceError",
    "InfeasibleOperatingPoint",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "NODE_130NM",
    "NODE_65NM",
    "TechnologyNode",
    "VFTable",
    "__version__",
]
