"""Cross-process telemetry records and the per-point capture buffer.

The sweep executor fans points out to worker processes; each worker's
:class:`~repro.sim.cmp.KernelStats` and span trees would otherwise die
with the task.  These records are the picklable, cache-encodable form in
which that telemetry travels back through the executor's outcome channel
and is persisted by the :class:`~repro.harness.executor.ResultCache`
alongside the point's value — which is what lets ``--profile`` account
for parallel *and* warm-cache sweeps.

The capture buffer is per-process module state: the executor's point
wrapper brackets each evaluation with :func:`begin_point_capture` /
:func:`end_point_capture`, and
:meth:`ExperimentContext.run <repro.harness.context.ExperimentContext.run>`
deposits one :class:`KernelRecord` per simulation via
:func:`record_kernel`.  Outside a capture window ``record_kernel`` is a
no-op, so long-lived processes that never drain (test suites, notebooks)
do not accumulate records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.telemetry.timeseries import SampleRecord
from repro.telemetry.trace import SpanRecord


@dataclass(frozen=True)
class KernelRecord:
    """One simulation run's kernel profile, flattened for transport.

    A picklable mirror of :class:`~repro.sim.cmp.KernelStats` (the
    ``subsystem_s`` dict becomes a sorted tuple of pairs so the record
    is hashable and cache-encodable).
    """

    mode: str
    total_ops: int
    fast_path_ops: int
    slow_path_ops: int
    barrier_ops: int
    sim_wall_s: float
    compile_s: float
    compile_cache_hit: bool
    compile_cache_evicted: bool = False
    subsystem_s: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def from_stats(cls, stats: Any) -> "KernelRecord":
        """Build a record from any ``KernelStats``-shaped object."""
        return cls(
            mode=stats.mode,
            total_ops=stats.total_ops,
            fast_path_ops=stats.fast_path_ops,
            slow_path_ops=stats.slow_path_ops,
            barrier_ops=stats.barrier_ops,
            sim_wall_s=stats.sim_wall_s,
            compile_s=stats.compile_s,
            compile_cache_hit=stats.compile_cache_hit,
            compile_cache_evicted=getattr(stats, "compile_cache_evicted", False),
            subsystem_s=tuple(sorted(stats.subsystem_s.items())),
        )


@dataclass(frozen=True)
class PointTelemetry:
    """Everything one sweep point's evaluation reported about itself.

    Travels in the :class:`~repro.harness.executor.PointOutcome` and in
    the result cache's per-point document, so a warm-cache rerun can
    still account for the op counts of the original evaluation.
    """

    #: Process that evaluated the point (the coordinator's own pid for
    #: inline evaluation; a worker pid under ``--jobs N``).
    pid: int
    #: Wall-clock start of the evaluation (absolute microseconds on the
    #: span timebase; see :func:`repro.telemetry.trace.now_us`).
    start_us: float
    #: Wall-clock seconds the evaluation took end to end.
    wall_s: float
    #: One record per simulation the point ran (profiling points run
    #: one; analytical points run none).
    kernels: Tuple[KernelRecord, ...] = ()
    #: Span trees completed during the evaluation (empty when tracing
    #: was disabled in the evaluating process).
    spans: Tuple[SpanRecord, ...] = ()
    #: Counter readings deposited during the evaluation (empty when
    #: sampling was disabled).  Unlike spans these persist in the result
    #: cache, so warm-cache reruns replay the original timeline.
    samples: Tuple[SampleRecord, ...] = ()

    @property
    def total_ops(self) -> int:
        """Simulated source ops across the point's runs."""
        return sum(k.total_ops for k in self.kernels)

    @property
    def fast_path_ops(self) -> int:
        """Fast-path-resolved ops across the point's runs."""
        return sum(k.fast_path_ops for k in self.kernels)


# ---------------------------------------------------------------------------
# Per-process capture buffer.
# ---------------------------------------------------------------------------

_capturing = False
_kernels: List[KernelRecord] = []


def capturing() -> bool:
    """Whether a point-capture window is open in this process."""
    return _capturing


def record_kernel(stats: Any) -> None:
    """Deposit one run's kernel stats into the open capture window.

    No-op when no window is open, so unharnessed ``context.run`` calls
    cost one boolean check and leak nothing.
    """
    if _capturing:
        # repro: allow[FORK-GLOBAL-WRITE] per-process capture buffer by design
        _kernels.append(KernelRecord.from_stats(stats))


def begin_point_capture() -> None:
    """Open a capture window (discarding any stale, undrained one)."""
    global _capturing
    # repro: allow[FORK-GLOBAL-WRITE] capture window opens in the worker by design
    _capturing = True
    # repro: allow[FORK-GLOBAL-WRITE] stale records drop before the window opens
    _kernels.clear()


def end_point_capture() -> Tuple[KernelRecord, ...]:
    """Close the capture window and return the runs it collected."""
    global _capturing
    # repro: allow[FORK-GLOBAL-WRITE] capture window closes in the worker by design
    _capturing = False
    records = tuple(_kernels)
    # repro: allow[FORK-GLOBAL-WRITE] drained records return through the outcome tuple
    _kernels.clear()
    return records
