"""A simplified CACTI: cache area, access time, and per-access energy.

CACTI [40] solves a detailed RC model of SRAM arrays.  For this
reproduction we only need three well-behaved outputs, so we use standard
first-order scaling laws calibrated against the paper's own numbers:

* **area** — a 6T SRAM bit cell occupies ~146 F^2 plus array overhead
  (decoders, sense amps, tags); total array area scales linearly with
  capacity and quadratically with feature size.
* **access time** — grows with the square root of capacity (wordline /
  bitline flight) on top of a fixed sense/decode floor, scaled linearly
  with feature size.  The two Table 1 points (64 KB -> 2 cycles and
  4 MB -> 12 cycles at 3.2 GHz, 65 nm) pin the constants.
* **energy per access** — proportional to the square root of capacity
  (one wordline + bitlines swing) and to V^2, scaled with feature size.

:class:`CMPAreaModel` combines core and cache areas into the die-size
estimate of Table 1 (244.5 mm^2 for the 16-way EV6 CMP at 65 nm).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NANO, m2_to_mm2

#: 6T SRAM cell size in units of F^2, including a typical array overhead.
_SRAM_CELL_F2 = 146.0
#: Array peripheral overhead multiplier (decoders, sense amps, tags).
_ARRAY_OVERHEAD = 1.45

#: Access-time constants calibrated so a 64 KB cache takes 0.625 ns (2
#: cycles at 3.2 GHz) and a 4 MB cache 3.75 ns (12 cycles) at 65 nm.
_T_FLOOR_NS_65 = 0.17857
_T_SQRT_NS_65_PER_SQRT_KB = 0.05580

#: Energy constant: a 64 KB access costs ~0.20 nJ at 65 nm, 1.1 V
#: (Wattch-class value); scales with sqrt(capacity).
_E_SQRT_NJ_65_PER_SQRT_KB = 0.025

#: Reference feature size the constants are calibrated at.
_REFERENCE_NM = 65.0
#: Reference supply for the energy constant.
_REFERENCE_V = 1.1

#: EV6 die area at its native 350 nm process (mm^2), used to scale the
#: core area the way the paper does ("similar to [25]").
_EV6_AREA_MM2_350NM = 209.0
_EV6_NATIVE_NM = 350.0


@dataclass(frozen=True)
class CacheGeometry:
    """Capacity / organisation of one cache array."""

    capacity_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "capacity must be a multiple of line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.line_bytes * self.associativity)

    @property
    def capacity_kb(self) -> float:
        """Capacity in kilobytes."""
        return self.capacity_bytes / 1024.0


#: Table 1 cache organisations.
L1_GEOMETRY = CacheGeometry(capacity_bytes=64 * 1024, line_bytes=64, associativity=2)
L2_GEOMETRY = CacheGeometry(
    capacity_bytes=4 * 1024 * 1024, line_bytes=128, associativity=8
)


class CactiModel:
    """Analytical cache area / time / energy estimates for one process node."""

    def __init__(self, feature_nm: float) -> None:
        if feature_nm <= 0:
            raise ConfigurationError("feature size must be positive")
        self.feature_nm = feature_nm

    def area_mm2(self, geometry: CacheGeometry) -> float:
        """Silicon area of the cache array in mm^2."""
        f_m = self.feature_nm * NANO
        bits = geometry.capacity_bytes * 8
        cell_area_m2 = _SRAM_CELL_F2 * f_m * f_m
        return m2_to_mm2(bits * cell_area_m2 * _ARRAY_OVERHEAD)

    def access_time_ns(self, geometry: CacheGeometry) -> float:
        """Random-access latency in nanoseconds."""
        scale = self.feature_nm / _REFERENCE_NM
        return scale * (
            _T_FLOOR_NS_65
            + _T_SQRT_NS_65_PER_SQRT_KB * math.sqrt(geometry.capacity_kb)
        )

    def access_cycles(self, geometry: CacheGeometry, frequency_hz: float) -> int:
        """Round-trip latency in (ceiling) clock cycles at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        return max(1, math.ceil(self.access_time_ns(geometry) * NANO * frequency_hz))

    def energy_per_access_nj(self, geometry: CacheGeometry, voltage: float) -> float:
        """Dynamic energy of one access, in nanojoules, at supply ``voltage``."""
        if voltage <= 0:
            raise ConfigurationError("voltage must be positive")
        scale = (self.feature_nm / _REFERENCE_NM) * (voltage / _REFERENCE_V) ** 2
        return scale * _E_SQRT_NJ_65_PER_SQRT_KB * math.sqrt(geometry.capacity_kb)


class CMPAreaModel:
    """Die-area estimate for the paper's CMP (Table 1).

    Sums scaled EV6 core areas (each with its private L1s) and the shared
    L2, plus a fixed interconnect/IO overhead fraction.  With the default
    constants the 16-core 65 nm configuration lands on the paper's
    244.5 mm^2 (15.6 mm x 15.6 mm).
    """

    def __init__(
        self,
        feature_nm: float = 65.0,
        n_cores: int = 16,
        l2_geometry: CacheGeometry = L2_GEOMETRY,
        l1_geometry: CacheGeometry = L1_GEOMETRY,
        overhead_fraction: float = 0.344,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError("need at least one core")
        if not 0.0 <= overhead_fraction < 1.0:
            raise ConfigurationError("overhead_fraction must be in [0, 1)")
        self.cacti = CactiModel(feature_nm)
        self.feature_nm = feature_nm
        self.n_cores = n_cores
        self.l2_geometry = l2_geometry
        self.l1_geometry = l1_geometry
        self.overhead_fraction = overhead_fraction

    def core_area_mm2(self) -> float:
        """One EV6 core (logic only) scaled quadratically to this node."""
        scale = (self.feature_nm / _EV6_NATIVE_NM) ** 2
        return _EV6_AREA_MM2_350NM * scale

    def core_with_l1_area_mm2(self) -> float:
        """Core plus its private L1 instruction and data caches."""
        return self.core_area_mm2() + 2 * self.cacti.area_mm2(self.l1_geometry)

    def l2_area_mm2(self) -> float:
        """The shared L2 array."""
        return self.cacti.area_mm2(self.l2_geometry)

    def die_area_mm2(self) -> float:
        """Total die area including interconnect/IO overhead."""
        logic = self.n_cores * self.core_with_l1_area_mm2() + self.l2_area_mm2()
        return logic / (1.0 - self.overhead_fraction)

    def die_side_mm(self) -> float:
        """Side of the (square) die in millimetres."""
        return math.sqrt(self.die_area_mm2())
