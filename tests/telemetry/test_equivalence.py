"""Tracing must observe the simulation, never perturb it.

The acceptance bar for the telemetry layer: every simulated counter is
bitwise identical with the tracer enabled and disabled, while the
enabled run actually records the expected span taxonomy.
"""

from dataclasses import asdict

import pytest

from repro.harness.context import ExperimentContext
from repro.telemetry.trace import Tracer, set_tracer
from repro.workloads import workload_by_name


def counters(result):
    return (
        result.execution_time_ps,
        [asdict(s) for s in result.core_stats],
        asdict(result.coherence),
        result.memory_requests,
        result.lock_acquires,
        result.barriers,
    )


@pytest.fixture(scope="module")
def traced_and_untraced():
    """One (result, power) pair per tracer state, same machine and workload."""
    model = workload_by_name("Barnes")
    baseline_ctx = ExperimentContext(workload_scale=0.05)
    baseline = baseline_ctx.run(model, 4)

    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        traced_ctx = ExperimentContext(workload_scale=0.05)
        traced = traced_ctx.run(model, 4)
    finally:
        set_tracer(previous)
    return baseline, traced, tracer


class TestTelemetryEquivalence:
    def test_simulated_counters_are_bitwise_identical(self, traced_and_untraced):
        (result_off, _), (result_on, _), _ = traced_and_untraced
        assert counters(result_off) == counters(result_on)

    def test_power_and_thermal_outcomes_are_identical(self, traced_and_untraced):
        (_, power_off), (_, power_on), _ = traced_and_untraced
        assert power_off.total_w == power_on.total_w
        assert power_off.average_temperature_c == power_on.average_temperature_c
        assert (
            power_off.thermal.block_temperatures_k
            == power_on.thermal.block_temperatures_k
        )

    def test_traced_run_recorded_the_expected_span_taxonomy(
        self, traced_and_untraced
    ):
        _, _, tracer = traced_and_untraced
        names = set()

        def walk(record):
            names.add(record.name)
            for child in record.children:
                walk(child)

        for record in tracer.drain_records():
            walk(record)
        assert {"kernel.window", "power.solve", "thermal.solve"} <= names
        assert any(name.startswith("kernel.slow_path.") for name in names)
        assert tracer.dropped == 0

    def test_kernel_stats_gain_subsystem_timers_under_tracing(
        self, traced_and_untraced
    ):
        (result_off, _), (result_on, _), _ = traced_and_untraced
        # Tracing turns the host-side slow-path timers on (they feed the
        # aggregate spans); the un-traced, un-profiled run leaves them off.
        assert result_on.kernel.subsystem_s
        assert not result_off.kernel.subsystem_s
        # The op counters themselves still agree exactly.
        assert result_on.kernel.total_ops == result_off.kernel.total_ops
        assert result_on.kernel.fast_path_ops == result_off.kernel.fast_path_ops
