"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model or simulator was constructed with inconsistent parameters."""


class InfeasibleOperatingPoint(ReproError):
    """The requested (V, f, N) operating point cannot be realised.

    Raised, for example, when Scenario I would need to overclock beyond the
    nominal frequency (``N * eps_n < 1``, Section 2.2 of the paper), or when
    a requested voltage falls outside the technology's legal range.
    """


class ConvergenceError(ReproError):
    """An iterative solver (thermal fixed point, bisection) failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload model was asked for an unsupported configuration.

    Some SPLASH-2 applications only run on power-of-two thread counts
    (Section 4.1); asking for e.g. 6 threads raises this.
    """


class TransientError(ReproError):
    """A failure that retrying the same point may resolve.

    The sweep executor's retry machinery only ever re-attempts points
    whose failure derives from this class (or escaped the library
    entirely); deterministic physics failures like
    :class:`InfeasibleOperatingPoint` are final on the first attempt.
    """


class InjectedFault(TransientError):
    """A failure deliberately injected by the fault plane (testing only).

    Raised by :mod:`repro.harness.faults` when a seeded fault plan
    sabotages a sweep point, so fault-tolerance tests exercise the real
    retry/quarantine/resume paths with reproducible failures.
    """


class WorkerCrash(TransientError):
    """A sweep worker process died without reporting a result.

    Stands in for the failures a production fleet actually sees — the
    OOM killer, a segfault in a native extension, a pre-empted node.
    """


class PointTimeout(TransientError):
    """A sweep point exceeded its per-point deadline and was killed."""
