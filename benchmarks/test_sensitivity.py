"""Sensitivity tornado for the analytical model (extension).

Which constants drive Figures 1 and 2?  The elasticities quantify the
robustness story: the voltage floor dominates (|elasticity| ~ 2), the
alpha-power exponent and static share are second-order, and the nominal
frequency cancels exactly (the metrics are normalized).
"""

from repro.core.sensitivity import (
    iso_performance_power_metric,
    peak_speedup_metric,
    sensitivity_analysis,
)
from repro.harness import render_table
from repro.tech import NODE_65NM


def test_sensitivity_tornado(benchmark):
    def analyse():
        return {
            "fig2 peak speedup": sensitivity_analysis(
                NODE_65NM, peak_speedup_metric
            ),
            "fig1 norm power (N=8, eps=0.8)": sensitivity_analysis(
                NODE_65NM, iso_performance_power_metric()
            ),
        }

    results = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print()
    for label, entries in results.items():
        print(
            render_table(
                ["parameter", "elasticity"],
                [[e.parameter, e.elasticity] for e in entries],
                title=f"Sensitivity of {label} (baseline "
                f"{entries[0].baseline_metric:.3f})",
            )
        )
        print()
        by_name = {e.parameter: e for e in entries}
        assert by_name["f_nominal"].magnitude < 0.05
        assert (
            max(by_name["vth"].magnitude, by_name["noise_margin"].magnitude)
            > by_name["static_fraction"].magnitude
        )
