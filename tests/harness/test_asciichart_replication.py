"""Tests for the ASCII chart renderer and the replication utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.harness.asciichart import SPARK_LEVELS, bar_chart, sparkline, xy_chart
from repro.harness.replication import ReplicationSummary, replicate, reseeded
from repro.workloads import workload_by_name


class TestXYChart:
    def test_renders_markers_and_legend(self):
        text = xy_chart({"a": [(0, 0), (1, 1)], "b": [(0.5, 0.5)]})
        assert "o=a" in text
        assert "x=b" in text
        assert "o" in text.splitlines()[-2] or "o" in text

    def test_axis_labels(self):
        text = xy_chart({"s": [(0, 0), (1, 2)]}, x_label="eps", y_label="power")
        assert "x: eps" in text
        assert "y: power" in text

    def test_explicit_ranges_clip(self):
        text = xy_chart(
            {"s": [(0.5, 0.5), (10.0, 10.0)]},
            x_range=(0.0, 1.0),
            y_range=(0.0, 1.0),
        )
        # The out-of-range point is silently dropped; chart still renders
        # (count markers in the grid, excluding the legend line).
        grid = "\n".join(text.splitlines()[:-1])
        assert grid.count("o") == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            xy_chart({})
        with pytest.raises(ConfigurationError):
            xy_chart({"a": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ConfigurationError):
            xy_chart({"a": [(0, 0)]}, width=4)

    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_never_crashes_on_finite_points(self, points):
        xs = {x for x, _ in points}
        ys = {y for _, y in points}
        if len(xs) < 2 or len(ys) < 1:
            return  # degenerate ranges are rejected; covered elsewhere
        text = xy_chart({"s": points})
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 6


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"a": 1.0, "b": 2.0}, width=20)
        line_a, line_b = text.splitlines()
        assert line_b.count("=") == 2 * line_a.count("=")

    def test_reference_marker(self):
        text = bar_chart({"a": 0.5}, width=20, reference=1.0)
        assert "|" in text

    def test_values_printed(self):
        text = bar_chart({"fmm": 0.41})
        assert "0.41" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})


class TestSparkline:
    def test_extremes_map_to_the_ramp_ends(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(text) == 4
        assert text[0] == SPARK_LEVELS[0]
        assert text[-1] == SPARK_LEVELS[-1]
        levels = [SPARK_LEVELS.index(c) for c in text]
        assert levels == sorted(levels)

    def test_flat_series_renders_at_the_middle_level(self):
        # A constant 80 °C must not look like zero.
        text = sparkline([80.0, 80.0, 80.0])
        assert text == SPARK_LEVELS[len(SPARK_LEVELS) // 2] * 3

    def test_long_series_resample_by_bucket_mean(self):
        text = sparkline(list(range(120)), width=30)
        assert len(text) == 30
        levels = [SPARK_LEVELS.index(c) for c in text]
        assert levels == sorted(levels)  # ramp survives the resample

    def test_short_series_keep_their_length(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([1.0], width=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200
        ),
        st.integers(min_value=1, max_value=80),
    )
    def test_always_fits_the_width_and_the_ramp(self, values, width):
        text = sparkline(values, width=width)
        assert len(text) == min(len(values), width)
        assert set(text) <= set(SPARK_LEVELS)


class TestReplication:
    def test_summary_statistics(self):
        summary = ReplicationSummary(metric="x", samples=(1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.std == pytest.approx(1.0)
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.relative_spread() == pytest.approx(1.0)

    def test_single_sample(self):
        summary = ReplicationSummary(metric="x", samples=(5.0,))
        assert summary.std == 0.0
        assert summary.relative_spread() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationSummary(metric="x", samples=())

    def test_reseeded_changes_seed_only(self):
        model = workload_by_name("Barnes")
        replica = reseeded(model, 0)
        assert replica.spec.seed != model.spec.seed
        assert replica.spec.total_instructions == model.spec.total_instructions
        assert reseeded(model, 0).spec.seed == replica.spec.seed  # deterministic
        assert reseeded(model, 1).spec.seed != replica.spec.seed

    def test_replicate_runs_experiment_per_seed(self):
        model = workload_by_name("Barnes")
        seen = []

        def experiment(m):
            seen.append(m.spec.seed)
            return float(m.spec.seed % 7)

        summary = replicate(model, experiment, n_replicas=3, metric="demo")
        assert len(seen) == len(set(seen)) == 3
        assert len(summary.samples) == 3

    def test_efficiency_stable_across_seeds(self):
        # The headline eps_n(4) metric should not be a seed artefact.
        from repro.sim import ChipMultiprocessor, CMPConfig
        from repro.workloads.base import WorkloadModel

        base = workload_by_name("Water-Sp")

        def eps4(model):
            short = WorkloadModel(model.spec.scaled(0.08))
            times = {}
            for n in (1, 4):
                result = ChipMultiprocessor(CMPConfig()).run(
                    [short.thread_ops(t, n) for t in range(n)],
                    short.core_timing(),
                    warmup_barriers=short.warmup_barriers,
                )
                times[n] = result.execution_time_ps
            return times[1] / (4 * times[4])

        summary = replicate(base, eps4, n_replicas=3, metric="eps_n(4)")
        assert summary.relative_spread() < 0.15
