"""The exact parameter sweeps behind the paper's Figures 1 and 2.

Figure 1 plots normalised power consumption versus nominal parallel
efficiency for N in {2, 4, 8, 16, 32}, once per technology node (130 nm
and 65 nm), all configurations forced to match the 1-core nominal
performance, with the sample application's operating points marked.

Figure 2 plots speedup versus N (1..32) under the 1-core power budget at
``eps_n = 1`` for both nodes.

These helpers return plain data records so the benchmark harness, the
examples, and the tests can share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.efficiency import ConstantEfficiency, EfficiencyCurve, SAMPLE_APPLICATION
from repro.core.powermodel import AnalyticalChipModel
from repro.core.scenario1 import PowerOptimizationScenario, Scenario1Point
from repro.core.scenario2 import PerformanceOptimizationScenario, Scenario2Point
from repro.errors import InfeasibleOperatingPoint
from repro.tech.technology import TechnologyNode

#: The core counts of Figure 1's curves.
FIGURE1_CORE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: The core counts of Figure 2's x-axis.
FIGURE2_CORE_COUNTS: Tuple[int, ...] = tuple(range(1, 33))


@dataclass(frozen=True)
class Figure1Curve:
    """One Figure 1 curve: normalised power vs efficiency at fixed N."""

    technology: str
    n: int
    efficiencies: Tuple[float, ...]
    normalized_power: Tuple[float, ...]
    #: The sample application's mark on this curve (eps, power), if its
    #: efficiency at this N is feasible.
    sample_mark: Optional[Tuple[float, float]]


@dataclass(frozen=True)
class Figure2Curve:
    """One Figure 2 curve: speedup vs N under the 1-core power budget."""

    technology: str
    core_counts: Tuple[int, ...]
    speedups: Tuple[float, ...]
    regimes: Tuple[str, ...]

    def peak(self) -> Tuple[int, float]:
        """(N, speedup) of the curve's maximum."""
        idx = int(np.argmax(self.speedups))
        return self.core_counts[idx], self.speedups[idx]


def figure1_sweep(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE1_CORE_COUNTS,
    efficiency_points: int = 101,
    sample_application: EfficiencyCurve = SAMPLE_APPLICATION,
) -> List[Figure1Curve]:
    """Regenerate Figure 1 for one technology node.

    Sweeps ``eps_n`` over (0, 1] for each N; infeasible points
    (``N * eps_n < 1``) are omitted like the blank region in the paper.
    """
    scenario = PowerOptimizationScenario(chip)
    efficiency_grid = np.linspace(0.01, 1.0, efficiency_points)
    curves: List[Figure1Curve] = []
    for n in core_counts:
        solved = scenario.efficiency_sweep(n, [float(e) for e in efficiency_grid])
        mark: Optional[Tuple[float, float]] = None
        try:
            sample_eps = sample_application(n)
            if n * sample_eps >= 1.0:
                sample_point = scenario.solve(n, sample_eps)
                mark = (sample_eps, sample_point.normalized_power)
        except InfeasibleOperatingPoint:
            mark = None
        curves.append(
            Figure1Curve(
                technology=chip.tech.name,
                n=n,
                efficiencies=tuple(p.eps_n for p in solved),
                normalized_power=tuple(p.normalized_power for p in solved),
                sample_mark=mark,
            )
        )
    return curves


def figure2_sweep(
    chip: AnalyticalChipModel,
    core_counts: Sequence[int] = FIGURE2_CORE_COUNTS,
    efficiency: EfficiencyCurve | None = None,
) -> Figure2Curve:
    """Regenerate one Figure 2 curve (speedup vs N at eps_n = 1)."""
    scenario = PerformanceOptimizationScenario(chip)
    points = scenario.speedup_curve(efficiency or ConstantEfficiency(1.0), core_counts)
    return Figure2Curve(
        technology=chip.tech.name,
        core_counts=tuple(p.n for p in points),
        speedups=tuple(p.speedup for p in points),
        regimes=tuple(p.regime for p in points),
    )
