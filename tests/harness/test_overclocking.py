"""Tests for the overclocking study (Section 4.2's closing remark)."""

import pytest

from repro.harness import ExperimentContext, run_overclocking_study
from repro.harness.scenario2 import OverclockRow
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.08)


class TestOverclockRow:
    def make_row(self, clock=1.25, base=2.0, boosted=2.2):
        return OverclockRow(
            app="x",
            n=2,
            baseline_speedup=base,
            overclocked_speedup=boosted,
            overclock_frequency_hz=clock * 3.2e9,
            power_w=10.0,
            budget_w=17.0,
        )

    def test_clock_gain(self):
        assert self.make_row(clock=1.25).clock_gain == pytest.approx(1.25)

    def test_gap_offset_full_realisation(self):
        # Speedup gain equal to the clock gain: nothing offset.
        row = self.make_row(clock=1.25, base=2.0, boosted=2.5)
        assert row.gap_offset == pytest.approx(0.0)

    def test_gap_offset_no_realisation(self):
        row = self.make_row(clock=1.25, base=2.0, boosted=2.0)
        assert row.gap_offset == pytest.approx(1.0)

    def test_gap_offset_zero_when_not_overclocked(self):
        row = self.make_row(clock=1.0, base=2.0, boosted=2.0)
        assert row.gap_offset == 0.0


class TestStudy:
    def test_memory_bound_headroom_is_mostly_offset(self, context):
        # Radix at low N has lots of budget headroom; the paper predicts
        # the widening processor-memory gap eats most of the overclock.
        row = run_overclocking_study(context, workload_by_name("Radix"), 2)
        assert row.clock_gain > 1.1  # plenty of headroom to overclock
        assert row.power_w <= row.budget_w
        assert row.gap_offset > 0.5
        assert row.overclocked_speedup >= row.baseline_speedup * 0.99

    def test_compute_bound_realises_more_of_the_clock(self, context):
        radix = run_overclocking_study(context, workload_by_name("Radix"), 2)
        fmm = run_overclocking_study(context, workload_by_name("FMM"), 1)
        if fmm.clock_gain > 1.0:
            assert fmm.gap_offset < radix.gap_offset

    def test_budget_limits_the_boost(self, context):
        tight = run_overclocking_study(
            context, workload_by_name("Radix"), 2, budget_w=4.0
        )
        loose = run_overclocking_study(
            context, workload_by_name("Radix"), 2, budget_w=30.0
        )
        assert tight.overclock_frequency_hz <= loose.overclock_frequency_hz
