"""The result-schema version shared by the store and the result cache.

Both :mod:`repro.harness.store` (campaign files) and
:mod:`repro.harness.executor` (the memoizing point cache) tag their JSON
documents with this version and refuse documents they do not understand.
It lives in its own leaf module so either side can import it without
creating an import cycle.

Bump it whenever a row dataclass changes incompatibly — every cached
point is keyed on it, so a bump invalidates all memoized results at once.
"""

from __future__ import annotations

#: Version of the flat row dataclasses' on-disk encoding.
SCHEMA_VERSION = 1
