"""``repro check`` end-to-end: exit codes, formats, baseline workflow."""

import json

import pytest

from repro.analysis import validate_report_document
from repro.cli import main

from tests.analysis.conftest import FIXTURE_ROOT


def test_seeded_tree_fails_per_family(capsys):
    # One seeded violation per checker family must each trip the gate.
    for rule in ("DET-WALLCLOCK", "UNIT-MIXED", "HOT-ALLOC", "PICK-LAMBDA"):
        code = main(
            [
                "check",
                "--root",
                str(FIXTURE_ROOT),
                "--no-baseline",
                "--rule",
                rule,
            ]
        )
        out = capsys.readouterr().out
        assert code == 1, f"{rule} did not gate"
        assert rule in out


def test_shipped_tree_exits_zero(capsys):
    assert main(["check"]) == 0
    assert "0 new" in capsys.readouterr().out


def test_json_format_validates(capsys):
    code = main(
        ["check", "--root", str(FIXTURE_ROOT), "--no-baseline", "--format", "json"]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert validate_report_document(document) == []
    assert document["new_count"] == document["finding_count"] > 0


def test_update_baseline_then_clean_gate(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "check",
                "--root",
                str(FIXTURE_ROOT),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    capsys.readouterr()
    # Against the fresh baseline every seeded finding is pre-existing debt.
    assert (
        main(["check", "--root", str(FIXTURE_ROOT), "--baseline", str(baseline)])
        == 0
    )
    out = capsys.readouterr().out
    assert "0 new" in out and "(baselined)" in out


def test_new_violation_beyond_baseline_gates(tmp_path, capsys):
    tree = tmp_path / "tree" / "sim"
    tree.mkdir(parents=True)
    module = tree / "mod.py"
    module.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = tmp_path / "baseline.json"
    root = str(tmp_path / "tree")
    assert main(["check", "--root", root, "--baseline", str(baseline), "--update-baseline"]) == 0
    assert main(["check", "--root", root, "--baseline", str(baseline)]) == 0
    module.write_text(
        "import time\n\ndef f():\n    return time.time()\n"
        "\ndef g():\n    return time.perf_counter()\n"
    )
    capsys.readouterr()
    assert main(["check", "--root", root, "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "NEW" in out and "perf_counter" in out


def test_rule_filter_unknown_id_raises():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        main(["check", "--root", str(FIXTURE_ROOT), "--rule", "NOPE"])


def test_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET-WALLCLOCK", "UNIT-MAGIC", "HOT-GETATTR", "PICK-SLOTS"):
        assert rule in out


def test_parse_error_gates(tmp_path, capsys):
    tree = tmp_path / "sim"
    tree.mkdir()
    (tree / "broken.py").write_text("def f(:\n")
    assert main(["check", "--root", str(tmp_path), "--no-baseline"]) == 1
    assert "PARSE-ERROR" in capsys.readouterr().out
