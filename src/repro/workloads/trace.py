"""Trace recording and replay: pair the simulator with external traces.

The synthetic workload models are one source of operation streams; real
deployments of simulators like this pair them with *traces* captured
from instrumented runs elsewhere (Pin/SimPoint-style).  This module
defines a simple, line-oriented trace format and the adapters in both
directions:

* :func:`record_trace` — serialise any workload model's streams to disk
  (optionally gzip-compressed), one file per run holding every thread;
* :class:`TraceWorkload` — a drop-in workload whose ``thread_ops`` replay
  a trace file, usable anywhere a :class:`WorkloadModel` is.

Format (text, ``#`` comments, blank lines ignored)::

    !threads 4                  # header: thread count (required, first)
    !timing base_cpi=0.8 icache_miss_rate=0.001 memory_parallelism=1.5
    0 C 120                     # thread 0: compute burst of 120 instr
    0 L 0x1a2b3c                # thread 0: load
    1 S 0x40000008              # thread 1: store
    0 B 0                       # thread 0: barrier #0
    2 X 3 40 0x7000000000       # thread 2: critical: lock 3, 40 instr, addr

Lines may arrive in any thread order; replay preserves each thread's own
sequence.  Addresses accept decimal or ``0x`` hex.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.errors import ConfigurationError, WorkloadError
from repro.sim.cpu import CoreTimingConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE

_OP_TO_CODE = {OP_COMPUTE: "C", OP_LOAD: "L", OP_STORE: "S", OP_BARRIER: "B", OP_CRITICAL: "X"}
_CODE_TO_OP = {v: k for k, v in _OP_TO_CODE.items()}

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _format_op(thread_id: int, op: tuple) -> str:
    kind = op[0]
    code = _OP_TO_CODE.get(kind)
    if code is None:
        raise ConfigurationError(f"unknown op kind {kind}")
    if kind == OP_COMPUTE:
        return f"{thread_id} C {op[1]}"
    if kind in (OP_LOAD, OP_STORE):
        return f"{thread_id} {code} {op[1]:#x}"
    if kind == OP_BARRIER:
        return f"{thread_id} B {op[1]}"
    return f"{thread_id} X {op[1]} {op[2]} {op[3]:#x}"


def record_trace(
    model,
    n_threads: int,
    path: PathLike,
) -> int:
    """Serialise a workload model's streams for ``n_threads`` to ``path``.

    Returns the number of operations written.  Threads are interleaved
    round-robin purely for file locality; replay order per thread is what
    matters and is preserved exactly.
    """
    streams = [model.thread_ops(t, n_threads) for t in range(n_threads)]
    timing = model.core_timing()
    written = 0
    with _open_text(path, "w") as out:
        out.write(f"!threads {n_threads}\n")
        out.write(f"!warmup {getattr(model, 'warmup_barriers', 0)}\n")
        out.write(
            "!timing "
            f"base_cpi={timing.base_cpi} "
            f"icache_miss_rate={timing.icache_miss_rate} "
            f"memory_parallelism={timing.memory_parallelism}\n"
        )
        live = list(enumerate(streams))
        while live:
            still_live = []
            for thread_id, stream in live:
                op = next(stream, None)
                if op is None:
                    continue
                out.write(_format_op(thread_id, op) + "\n")
                written += 1
                still_live.append((thread_id, stream))
            live = still_live
    return written


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


@dataclass(frozen=True)
class _ParsedTrace:
    """The immutable outcome of parsing one trace file."""

    threads: Dict[int, List[tuple]]
    timing: CoreTimingConfig
    n_threads: int
    warmup_barriers: int


#: Parsed traces keyed by (resolved path, mtime_ns, size): sweep points
#: that construct a fresh TraceWorkload per simulation reuse one parse
#: per process instead of re-reading the text file every time.
_PARSE_CACHE: Dict[tuple, _ParsedTrace] = {}
_PARSE_CACHE_MAX = 16


class TraceWorkload:
    """A workload that replays a recorded (or externally produced) trace.

    Satisfies the same informal protocol as
    :class:`repro.workloads.base.WorkloadModel`: ``name``,
    ``core_timing()``, ``supports(n)``, ``thread_ops(tid, n)``, and
    ``warmup_barriers``.  The trace is parsed eagerly at construction
    (validation errors surface immediately) and replay is pure list
    iteration.  Parses are memoized per (path, mtime, size) process-wide,
    so constructing the same trace for every point of a sweep reads the
    file once; ``thread_ops`` always serves the in-memory lists.
    """

    #: Leading barriers that delimit untimed initialization; recorded
    #: traces carry the source model's value in a ``!warmup`` header
    #: (hand-authored traces default to 0).
    warmup_barriers = 0

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.name = self.path.name.split(".")[0]
        self._threads: Dict[int, List[tuple]] = {}
        self._timing = CoreTimingConfig()
        self._n_threads = 0
        stat = self.path.stat()
        self._file_signature = (
            str(self.path.resolve()),
            stat.st_mtime_ns,
            stat.st_size,
        )
        cached = _PARSE_CACHE.get(self._file_signature)
        if cached is not None:
            self._threads = cached.threads
            self._timing = cached.timing
            self._n_threads = cached.n_threads
            self.warmup_barriers = cached.warmup_barriers
            return
        self._parse()
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            del _PARSE_CACHE[next(iter(_PARSE_CACHE))]
        # Entries are pure functions of the trace file, so lanes that fill
        # their own per-process copies stay bitwise-equivalent.
        # repro: allow[FORK-GLOBAL-WRITE] per-process parse cache by design
        _PARSE_CACHE[self._file_signature] = _ParsedTrace(
            threads=self._threads,
            timing=self._timing,
            n_threads=self._n_threads,
            warmup_barriers=self.warmup_barriers,
        )

    def compile_key(self, n_threads: int):
        """Identity of this trace's op streams for the compile cache."""
        return ("trace", self._file_signature, n_threads)

    def _parse(self) -> None:
        with _open_text(self.path, "r") as handle:
            for line_no, raw in enumerate(handle, start=1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                try:
                    self._parse_line(line)
                except (ValueError, IndexError, KeyError) as exc:
                    raise WorkloadError(
                        f"{self.path}:{line_no}: malformed trace line "
                        f"{line!r} ({exc})"
                    ) from exc
        if self._n_threads == 0:
            raise WorkloadError(f"{self.path}: missing '!threads' header")
        for thread_id in self._threads:
            if not 0 <= thread_id < self._n_threads:
                raise WorkloadError(
                    f"{self.path}: thread id {thread_id} outside "
                    f"0..{self._n_threads - 1}"
                )

    def _parse_line(self, line: str) -> None:
        if line.startswith("!threads"):
            self._n_threads = int(line.split()[1])
            if self._n_threads < 1:
                raise ValueError("thread count must be >= 1")
            return
        if line.startswith("!warmup"):
            value = int(line.split()[1])
            if value < 0:
                raise ValueError("warmup count must be >= 0")
            self.warmup_barriers = value
            return
        if line.startswith("!timing"):
            fields = dict(
                token.split("=", 1) for token in line.split()[1:]
            )
            self._timing = CoreTimingConfig(
                base_cpi=float(fields.get("base_cpi", 0.8)),
                icache_miss_rate=float(fields.get("icache_miss_rate", 0.001)),
                memory_parallelism=float(fields.get("memory_parallelism", 1.5)),
            )
            return
        tokens = line.split()
        thread_id = int(tokens[0])
        code = tokens[1].upper()
        kind = _CODE_TO_OP[code]
        ops = self._threads.setdefault(thread_id, [])
        if kind == OP_COMPUTE:
            ops.append((OP_COMPUTE, _parse_int(tokens[2])))
        elif kind in (OP_LOAD, OP_STORE):
            ops.append((kind, _parse_int(tokens[2])))
        elif kind == OP_BARRIER:
            ops.append((OP_BARRIER, _parse_int(tokens[2])))
        else:
            ops.append(
                (
                    OP_CRITICAL,
                    _parse_int(tokens[2]),
                    _parse_int(tokens[3]),
                    _parse_int(tokens[4]),
                )
            )

    @property
    def n_threads(self) -> int:
        """Thread count declared by the trace header."""
        return self._n_threads

    def core_timing(self) -> CoreTimingConfig:
        """Timing parameters from the trace's ``!timing`` header."""
        return self._timing

    def supports(self, n_threads: int) -> bool:
        """A trace replays only at its recorded thread count."""
        return n_threads == self._n_threads

    def supported_thread_counts(self, candidates) -> List[int]:
        """Filter candidates to the single recorded count."""
        return [n for n in candidates if self.supports(n)]

    def thread_ops(self, thread_id: int, n_threads: int) -> Iterator[tuple]:
        """Replay one thread's recorded operations."""
        if not self.supports(n_threads):
            raise WorkloadError(
                f"trace was recorded with {self._n_threads} threads, "
                f"cannot replay with {n_threads}"
            )
        if not 0 <= thread_id < self._n_threads:
            raise WorkloadError(f"thread id {thread_id} out of range")
        return iter(self._threads.get(thread_id, []))

    def operation_count(self) -> int:
        """Total operations across all threads."""
        # repro: allow[DET-FLOAT-SUM] integer sum; order-free by construction
        return sum(len(ops) for ops in self._threads.values())
