"""Tests for the next-line prefetcher extension."""


from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_COMPUTE, OP_LOAD
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


def streaming_thread(n_lines=200, line=64):
    """A pure sequential walk: the prefetcher's best case."""
    ops = []
    for i in range(n_lines):
        ops.append((OP_COMPUTE, 20))
        ops.append((OP_LOAD, i * line))
    return ops


class TestPrefetcher:
    def test_streaming_misses_collapse(self):
        base = ChipMultiprocessor(CMPConfig()).run([streaming_thread()])
        pref = ChipMultiprocessor(CMPConfig(prefetch_next_line=True)).run(
            [streaming_thread()]
        )
        assert pref.coherence.prefetches > 100
        assert pref.coherence.l1_misses < base.coherence.l1_misses * 0.2

    def test_streaming_runs_faster(self):
        base = ChipMultiprocessor(CMPConfig()).run([streaming_thread()])
        pref = ChipMultiprocessor(CMPConfig(prefetch_next_line=True)).run(
            [streaming_thread()]
        )
        assert pref.execution_time_ps < base.execution_time_ps

    def test_disabled_by_default(self):
        result = ChipMultiprocessor(CMPConfig()).run([streaming_thread(20)])
        assert result.coherence.prefetches == 0

    def test_no_prefetch_of_shared_lines(self):
        # Core 1 owns line 1; core 0's miss on line 0 must not steal it.

        config = CMPConfig(prefetch_next_line=True)
        chip = ChipMultiprocessor(config)
        threads = [
            [(OP_COMPUTE, 5000), (OP_LOAD, 0)],  # will want to prefetch line 1
            [(OP_LOAD, 64), (OP_COMPUTE, 10_000)],  # owns line 1 early
        ]
        result = chip.run(threads)
        # Core 1 still holds its line: the sharer map was respected.
        line = result.l1_caches[1].line_address(64)
        assert result.l1_caches[1].probe(line) is not None

    def test_mesi_invariants_with_prefetch(self):
        from tests.sim.test_mesi_invariants import check_invariants
        from repro.sim.bus import BusConfig, SharedBus
        from repro.sim.cache import Cache, CacheConfig
        from repro.sim.clock import ClockDomain
        from repro.sim.coherence import MESIController
        from repro.sim.memory import MainMemory

        clock = ClockDomain(3.2e9)
        l1s = [Cache(CacheConfig(1024, 64, 2)) for _ in range(3)]
        l2 = Cache(CacheConfig(16 * 1024, 128, 8))
        ctrl = MESIController(
            l1s, l2, SharedBus(BusConfig(), clock), MainMemory(), clock,
            prefetch_next_line=True,
        )
        t = 0
        for step, (core, addr, write) in enumerate(
            [(0, 0, False), (1, 64, True), (0, 64, False), (2, 128, True),
             (1, 0, False), (0, 192, True), (2, 64, False)] * 4
        ):
            t = (ctrl.write if write else ctrl.read)(core, addr, t) + 1
            check_invariants(ctrl)

    def test_memory_bound_app_benefits(self):
        model = WorkloadModel(workload_by_name("Ocean").spec.scaled(0.08))

        def run(prefetch):
            chip = ChipMultiprocessor(CMPConfig(prefetch_next_line=prefetch))
            return chip.run(
                [model.thread_ops(t, 4) for t in range(4)],
                model.core_timing(),
                warmup_barriers=model.warmup_barriers,
            )

        base = run(False)
        pref = run(True)
        assert pref.l1_miss_rate() < base.l1_miss_rate()
