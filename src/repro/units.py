"""Physical constants and small unit-conversion helpers.

Everything in the library works in SI base units internally:

* voltage in volts, frequency in hertz, power in watts, energy in joules,
* time in seconds, temperature in kelvin, length in metres, area in m^2.

The paper quotes temperatures in degrees Celsius (ambient 45 C, max die
temperature 100 C, "room temperature" 25 C); the helpers here convert at
API boundaries so the core math never mixes scales.
"""

from __future__ import annotations

#: Boltzmann constant (J/K).
BOLTZMANN: float = 1.380649e-23

#: Elementary charge (C).
ELECTRON_CHARGE: float = 1.602176634e-19

#: 0 degrees Celsius in kelvin.
ZERO_CELSIUS_IN_KELVIN: float = 273.15

#: Room temperature used as the leakage reference point ("Tstd", 25 C).
ROOM_TEMPERATURE_K: float = 25.0 + ZERO_CELSIUS_IN_KELVIN

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def celsius_to_kelvin(temperature_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temperature_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temperature_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temperature_k - ZERO_CELSIUS_IN_KELVIN


def thermal_voltage(temperature_k: float) -> float:
    """Thermal voltage kT/q (volts) at the given temperature."""
    return BOLTZMANN * temperature_k / ELECTRON_CHARGE


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area from square millimetres to square metres."""
    return area_mm2 * 1e-6


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area from square metres to square millimetres."""
    return area_m2 * 1e6
