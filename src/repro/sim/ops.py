"""Operation encoding shared between workload models and the simulator.

Workload threads are lazy streams of tuples; the first element selects
the kind:

* ``(OP_COMPUTE, n_instructions)`` — a burst of ALU/branch work,
* ``(OP_LOAD, byte_address)`` — one data-cache read,
* ``(OP_STORE, byte_address)`` — one data-cache write,
* ``(OP_BARRIER, barrier_index)`` — global barrier (indices must be
  issued in the same order by every thread),
* ``(OP_CRITICAL, lock_id, n_instructions, byte_address)`` — a critical
  section: acquire the lock, run the burst, read-modify-write the
  protected address, release.

Plain tuples (rather than dataclasses) keep the per-op cost low — the
simulator consumes hundreds of thousands of these per run.
"""

OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_BARRIER = 3
OP_CRITICAL = 4
