"""Parsed source files: AST, inline suppressions, and hot markers.

Two comment conventions drive the analyzer (see docs/ANALYSIS.md):

* ``# repro: allow[RULE-ID] reason`` — suppress RULE-ID findings on this
  line or the line directly below (so the comment can sit on its own
  line above a flagged statement).  Several ids may be listed,
  comma-separated.  The reason is free text; write one.
* ``# repro: hot`` — mark the next ``def`` as a hot-path function,
  opting it into the HOT-* discipline rules.  The marker goes on the
  line above the ``def`` (or its first decorator), or at the end of the
  ``def`` line itself.

Comments are read with :mod:`tokenize`, not regexes over raw lines, so
marker-shaped text inside string literals is never misread as a marker.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_, \-]+)\]\s*(?P<reason>.*)"
)
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class SourceError:
    """A file the analyzer could not parse."""

    rel: str
    message: str


class SourceFile:
    """One parsed module: text, AST, and analyzer markers."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Path relative to the analyzed root, with ``/`` separators.
        self.rel = rel
        self.text = text
        self.lines: Tuple[str, ...] = tuple(text.splitlines())
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        #: line -> rule ids allowed on that line (and the next one).
        self.allows: Dict[int, FrozenSet[str]] = {}
        #: Lines carrying a ``# repro: hot`` marker.
        self.hot_marks: FrozenSet[int] = frozenset()
        self._scan_comments()

    def _scan_comments(self) -> None:
        allows: Dict[int, FrozenSet[str]] = {}
        hot: List[int] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                allow = _ALLOW_RE.search(token.string)
                if allow is not None:
                    rules = frozenset(
                        part.strip().upper()
                        for part in allow.group("rules").split(",")
                        if part.strip()
                    )
                    allows[line] = allows.get(line, frozenset()) | rules
                if _HOT_RE.search(token.string):
                    hot.append(line)
        except tokenize.TokenError:
            # The AST parsed, so this is a tokenizer corner case; treat
            # the file as marker-free rather than failing the analysis.
            pass
        self.allows = allows
        self.hot_marks = frozenset(hot)

    def snippet(self, line: int) -> str:
        """The stripped source line at 1-based ``line`` (or empty)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()[:160]
        return ""

    def allowed(self, rule: str, line: int) -> bool:
        """Whether an inline suppression covers ``rule`` at ``line``."""
        for at in (line, line - 1):
            if rule.upper() in self.allows.get(at, frozenset()):
                return True
        return False

    def is_hot(self, node: FunctionNode) -> bool:
        """Whether ``node`` carries a ``# repro: hot`` marker."""
        start = node.lineno
        for decorator in node.decorator_list:
            start = min(start, decorator.lineno)
        return bool(
            self.hot_marks & {start - 1, node.lineno}
        )


def load_source_file(
    path: Path, rel: str
) -> Tuple[Optional[SourceFile], Optional[SourceError]]:
    """Parse one file; returns ``(file, None)`` or ``(None, error)``."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, SourceError(rel=rel, message=f"unreadable: {exc}")
    try:
        return SourceFile(path, rel, text), None
    except SyntaxError as exc:
        return None, SourceError(rel=rel, message=f"syntax error: {exc.msg}")
