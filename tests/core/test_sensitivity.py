"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.core.sensitivity import (
    SensitivityEntry,
    iso_performance_power_metric,
    peak_speedup_metric,
    sensitivity_analysis,
)
from repro.errors import ConfigurationError
from repro.tech import NODE_65NM


@pytest.fixture(scope="module")
def speedup_entries():
    return sensitivity_analysis(NODE_65NM, peak_speedup_metric)


class TestEntry:
    def test_elasticity_definition(self):
        entry = SensitivityEntry(
            parameter="x",
            baseline_metric=2.0,
            metric_up=2.2,
            metric_down=1.8,
            step=0.05,
        )
        # dM/M = 0.1, dp/p = 0.05 -> elasticity 2.
        assert entry.elasticity == pytest.approx(2.0)
        assert entry.magnitude == pytest.approx(2.0)

    def test_negative_elasticity(self):
        entry = SensitivityEntry("x", 2.0, 1.8, 2.2, 0.05)
        assert entry.elasticity == pytest.approx(-2.0)
        assert entry.magnitude == pytest.approx(2.0)


class TestAnalysis:
    def test_covers_all_parameters_ranked(self, speedup_entries):
        names = [e.parameter for e in speedup_entries]
        assert set(names) == {
            "alpha",
            "vth",
            "static_fraction",
            "noise_margin",
            "f_nominal",
        }
        magnitudes = [e.magnitude for e in speedup_entries]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_voltage_floor_dominates_figure2(self, speedup_entries):
        # The mechanism the ablations identified, quantified: the floor
        # (vth and the noise margin) caps the budget-legal speedup.
        top_two = {e.parameter for e in speedup_entries[:2]}
        assert top_two == {"vth", "noise_margin"}
        by_name = {e.parameter: e for e in speedup_entries}
        assert by_name["vth"].elasticity < 0  # higher floor, lower peak
        assert by_name["noise_margin"].elasticity < 0

    def test_nominal_frequency_cancels(self, speedup_entries):
        # Both headline metrics are normalized, so f1 must not matter.
        by_name = {e.parameter: e for e in speedup_entries}
        assert by_name["f_nominal"].magnitude < 0.05

    def test_figure1_metric(self):
        entries = sensitivity_analysis(
            NODE_65NM,
            iso_performance_power_metric(n=8, eps=0.8),
            parameters=("vth", "static_fraction"),
        )
        by_name = {e.parameter: e for e in entries}
        # A higher floor raises iso-performance power.
        assert by_name["vth"].elasticity > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(NODE_65NM, peak_speedup_metric, step=0.9)
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(
                NODE_65NM, peak_speedup_metric, parameters=("bogus",)
            )
