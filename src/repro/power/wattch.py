"""Activity-based dynamic power (the Wattch stand-in).

Wattch [3] charges a per-access energy to every microarchitectural event
and a per-cycle clock/base cost, with conditional clock gating for idle
units.  We do the same over the simulator's counters:

* per instruction: fetch/decode/rename/issue/execute/retire energy,
* per I-cache and D-cache access: the CACTI-derived array energy,
* per L2 access and per bus transaction: larger array/wire energies,
* per cycle: clock-tree and always-on energy, at a reduced
  ``idle_gating`` fraction while the core is stalled or parked
  (the "aggressive clock gating" the paper notes for the L2 [3]).

Energies are specified at the nominal supply and scale with (V/Vn)^2 —
per-event energy does not depend on frequency; frequency enters dynamic
*power* through the event rate, exactly as in Eq. 2.

Absolute values are Wattch-class estimates; the paper explicitly treats
Wattch's absolute scale as unreliable and renormalises it against
HotSpot (Section 3.3) — see :mod:`repro.power.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.cmp import SimulationResult

NJ = 1e-9


@dataclass(frozen=True)
class UnitEnergies:
    """Per-event dynamic energies (joules) at the nominal supply voltage."""

    v_nominal: float = 1.1
    instruction_j: float = 3.5 * NJ
    l1_access_j: float = 0.20 * NJ
    l2_access_j: float = 1.6 * NJ
    bus_transaction_j: float = 1.0 * NJ
    clock_cycle_j: float = 3.0 * NJ
    #: Fraction of the per-cycle clock/base energy burned while gated
    #: (stalled or parked at a barrier).
    idle_gating: float = 0.25
    #: Fraction burned in the thrifty-barrier sleep state (clock stopped,
    #: ACPI-like; only retention circuitry ticks).
    sleep_gating: float = 0.03
    #: Per-cycle background energy of the (aggressively gated) L2 block.
    l2_idle_cycle_j: float = 0.15 * NJ

    def __post_init__(self) -> None:
        if self.v_nominal <= 0:
            raise ConfigurationError("v_nominal must be positive")
        if not 0.0 <= self.idle_gating <= 1.0:
            raise ConfigurationError("idle_gating must be in [0, 1]")
        if not 0.0 <= self.sleep_gating <= 1.0:
            raise ConfigurationError("sleep_gating must be in [0, 1]")

    def voltage_scale(self, v: float) -> float:
        """The (V/Vn)^2 energy scaling of Eq. 2."""
        if v <= 0:
            raise ConfigurationError("voltage must be positive")
        return (v / self.v_nominal) ** 2


class WattchModel:
    """Aggregates a simulation's activity counters into dynamic power."""

    def __init__(self, energies: UnitEnergies | None = None) -> None:
        self.energies = energies or UnitEnergies()

    def core_dynamic_energy_j(
        self, result: SimulationResult, core_index: int
    ) -> float:
        """Dynamic energy of one core over the measured run (joules).

        Uses the core's own operating point, so per-core DVFS runs are
        charged correctly.
        """
        e = self.energies
        scale = e.voltage_scale(result.core_voltage(core_index))
        stats = result.core_stats[core_index]
        cache = result.l1_caches[core_index]
        clock = ClockDomain(result.core_frequency(core_index))

        busy_cycles = clock.ps_to_cycles(stats.busy_ps)
        sleep_cycles = clock.ps_to_cycles(stats.sleep_ps)
        total_cycles = clock.ps_to_cycles(result.execution_time_ps)
        idle_cycles = max(0.0, total_cycles - busy_cycles - sleep_cycles)

        energy = (
            stats.instructions * e.instruction_j
            + stats.icache_accesses * e.l1_access_j
            + cache.accesses * e.l1_access_j
            + busy_cycles * e.clock_cycle_j
            + idle_cycles * e.clock_cycle_j * e.idle_gating
            + sleep_cycles * e.clock_cycle_j * e.sleep_gating
        )
        return energy * scale

    def l2_dynamic_energy_j(self, result: SimulationResult) -> float:
        """Dynamic energy of the shared L2 + bus over the run (joules)."""
        e = self.energies
        scale = e.voltage_scale(result.config.voltage)
        clock = ClockDomain(result.config.frequency_hz)
        total_cycles = clock.ps_to_cycles(result.execution_time_ps)
        energy = (
            result.l2.accesses * e.l2_access_j
            + result.bus.transactions * e.bus_transaction_j
            + total_cycles * e.l2_idle_cycle_j
        )
        return energy * scale

    def dynamic_power_map(self, result: SimulationResult) -> Dict[str, float]:
        """Per-block average dynamic power (watts) over the measured run.

        Blocks are named to match :func:`repro.thermal.floorplan.cmp_floorplan`:
        ``core0..core{k-1}`` for the active cores and ``l2``.  Inactive
        cores are shut down and absent (zero power).
        """
        duration = result.execution_time_s
        if duration <= 0:
            raise ConfigurationError("simulation produced no measured time")
        powers = {
            f"core{i}": self.core_dynamic_energy_j(result, i) / duration
            for i in range(result.n_threads)
        }
        powers["l2"] = self.l2_dynamic_energy_j(result) / duration
        return powers

    def total_dynamic_power_w(self, result: SimulationResult) -> float:
        """Chip-wide average dynamic power (watts)."""
        # repro: allow[DET-FLOAT-SUM] map is built in fixed subsystem order
        return sum(self.dynamic_power_map(result).values())
